#include "replay/dist/controller.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>

#include "fault/fault.hpp"
#include "net/socket.hpp"
#include "replay/checkpoint.hpp"
#include "replay/dist/protocol.hpp"
#include "trace/load.hpp"
#include "util/log.hpp"

namespace ldp::replay::dist {

namespace {

enum class SlotState : uint8_t {
  Spawned,   // forked, no HELLO yet
  Helloed,   // connection bound, ASSIGN sent
  Ready,     // worker announced readiness, probes not started
  Probing,   // drift rounds in flight
  Synced,    // offset latched, waiting for the fleet barrier
  Started,   // START delivered, replaying
  Reported,  // REPORT received, waiting for the exit
  Dead,      // exited (normally, or budget-exhausted crash)
};

struct ProbeRounds {
  uint32_t sent = 0;
  uint32_t got = 0;
  TimeNs best_rtt = std::numeric_limits<TimeNs>::max();
  TimeNs best_offset = 0;
};

/// One worker index across all its incarnations.
struct Slot {
  size_t index = 0;
  pid_t pid = -1;
  bool reaped = true;
  int fd = -1;  ///< bound control connection, -1 between incarnations
  SlotState state = SlotState::Spawned;
  TimeNs last_frame = 0;
  TimeNs spawn_deadline = 0;
  uint32_t crashes = 0;
  uint32_t respawns = 0;
  TimeNs offset = 0;
  bool offset_is_initial = false;  ///< measured at the fleet barrier
  ProbeRounds probe;
  std::string last_checkpoint;  ///< latest CHECKPOINT payload, verbatim
  EngineReport report;
  bool have_report = false;
  bool started_by_barrier = false;
  bool fallback = false;  ///< slice must finish in-process
};

struct Conn {
  net::TcpStream stream;  ///< fd owner only — control frames, not DNS framing
  FrameReader reader;
  long slot = -1;  ///< bound worker index, -1 until HELLO
};

struct Controller {
  const DistConfig& cfg;
  std::vector<trace::TraceRecord> trace;
  net::TcpListener listener;
  Endpoint listen_ep;
  std::vector<Slot> slots;
  std::map<int, Conn> conns;
  bool global_start_sent = false;
  TimeNs barrier_start = 0;
  TimeNs trace_origin = 0;
  TimeNs kill_at = 0;
  bool kill_done = false;
  int64_t max_drift = 0;
  Result<void> failure = Ok();  ///< first hard error, ends the loop

  Controller(const DistConfig& c, std::vector<trace::TraceRecord> t,
             net::TcpListener l, Endpoint ep)
      : cfg(c), trace(std::move(t)), listener(std::move(l)), listen_ep(ep) {}

  void spawn(Slot& s) {
    std::vector<std::string> args = {
        cfg.worker_bin,
        "--connect",
        listen_ep.addr.to_string(),
        std::to_string(listen_ep.port),
        "--index",
        std::to_string(s.index),
    };
    if (s.index < cfg.worker_skew.size() && cfg.worker_skew[s.index] != 0) {
      args.push_back("--skew-ns");
      args.push_back(std::to_string(cfg.worker_skew[s.index]));
    }
    args.push_back(cfg.trace_path);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    pid_t pid = ::fork();
    if (pid < 0) {
      failure = Err(std::string("fork: ") + std::strerror(errno));
      return;
    }
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      // exec failure is a worker crash like any other; 127 shows up in logs.
      std::fprintf(stderr, "ldp-worker exec failed: %s: %s\n",
                   cfg.worker_bin.c_str(), std::strerror(errno));
      ::_exit(127);
    }
    s.pid = pid;
    s.reaped = false;
    s.fd = -1;
    s.state = SlotState::Spawned;
    s.probe = ProbeRounds{};
    s.have_report = false;
    s.spawn_deadline = mono_now_ns() + cfg.barrier_timeout;
  }

  void drop_conn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    if (it->second.slot >= 0) {
      Slot& s = slots[static_cast<size_t>(it->second.slot)];
      if (s.fd == fd) s.fd = -1;
      // A connection lost before REPORT is a crash in progress; the reap in
      // tick() does the accounting once the exit status is visible.
    }
    conns.erase(it);
  }

  /// A send failing means the worker died mid-conversation: shed the
  /// connection and let the reap see the corpse.
  void send_or_drop(int fd, FrameType type, const std::string& payload) {
    auto sent = send_frame(fd, type, payload);
    if (!sent.ok()) drop_conn(fd);
  }

  void send_probe(Slot& s) {
    BarrierMsg m{BarrierMsg::Kind::Probe, ++s.probe.sent, mono_now_ns(), 0};
    send_or_drop(s.fd, FrameType::Barrier, encode_barrier(m));
  }

  void begin_probes(Slot& s) {
    s.state = SlotState::Probing;
    s.probe = ProbeRounds{};
    send_probe(s);
  }

  /// Individual start for a respawned worker after the fleet barrier: it
  /// either resumes from its checkpoint (self-anchored; the instant is
  /// ignored) or replays its slice from scratch on its own lead.
  void start_individual(Slot& s) {
    StartMsg m;
    m.trace_origin = trace_origin;
    m.offset = s.offset;
    m.start_at = mono_now_ns() + cfg.start_lead / 2 +
                 (cfg.correct_drift ? s.offset : 0);
    send_or_drop(s.fd, FrameType::Start, encode_start(m));
    s.state = SlotState::Started;
  }

  void broadcast_start() {
    barrier_start = mono_now_ns() + cfg.start_lead;
    for (auto& s : slots) {
      if (s.state != SlotState::Synced) continue;
      StartMsg m;
      m.trace_origin = trace_origin;
      m.offset = s.offset;
      m.start_at = barrier_start + (cfg.correct_drift ? s.offset : 0);
      send_or_drop(s.fd, FrameType::Start, encode_start(m));
      s.state = SlotState::Started;
      s.started_by_barrier = true;
      max_drift = std::max<int64_t>(
          max_drift, s.offset < 0 ? -s.offset : s.offset);
    }
    global_start_sent = true;
    if (cfg.kill_worker >= 0) kill_at = barrier_start + cfg.kill_after;
    std::fprintf(stderr,
                 "workers: %zu processes, barrier start, max drift %lld us\n",
                 cfg.workers, static_cast<long long>(max_drift / 1000));
  }

  void maybe_barrier() {
    if (global_start_sent) return;
    for (const auto& s : slots) {
      if (s.fallback) continue;  // budget exhausted pre-start; fallback later
      if (s.state != SlotState::Synced) return;
    }
    broadcast_start();
  }

  void synced(Slot& s) {
    s.offset = s.probe.best_offset;
    s.state = SlotState::Synced;
    if (!global_start_sent) {
      s.offset_is_initial = true;
      maybe_barrier();
    } else {
      max_drift = std::max<int64_t>(
          max_drift, s.offset < 0 ? -s.offset : s.offset);
      start_individual(s);
    }
  }

  void all_ready_check() {
    if (global_start_sent) return;
    // Probes start per worker the moment it is Ready — rounds overlap
    // across workers; the barrier waits on Synced.
    for (auto& s : slots)
      if (s.state == SlotState::Ready) begin_probes(s);
  }

  void handle_frame(int fd, Conn& conn, Frame&& f) {
    if (conn.slot < 0) {
      if (f.type != FrameType::Hello) {
        drop_conn(fd);
        return;
      }
      auto hello = parse_hello(f.payload);
      if (!hello.ok() || hello->version != kProtocolVersion ||
          hello->worker < 0 ||
          hello->worker >= static_cast<int64_t>(slots.size())) {
        LDP_WARN("dist", "rejecting bad HELLO");
        drop_conn(fd);
        return;
      }
      Slot& s = slots[static_cast<size_t>(hello->worker)];
      if (s.fd != -1 || s.state != SlotState::Spawned) {
        LDP_WARN("dist", "duplicate HELLO for worker " << hello->worker);
        drop_conn(fd);
        return;
      }
      conn.slot = hello->worker;
      s.fd = fd;
      s.last_frame = mono_now_ns();
      AssignMsg assign;
      assign.index = s.index;
      assign.count = slots.size();
      assign.server = cfg.server;
      assign.timed = cfg.timed;
      assign.batched_io = cfg.batched_io;
      assign.distributors = cfg.distributors;
      assign.queriers = cfg.queriers_per_distributor;
      assign.heartbeat_interval = cfg.heartbeat_interval;
      assign.checkpoint_interval = cfg.checkpoint_interval;
      assign.fault_spec = cfg.fault_spec;
      assign.resume = s.last_checkpoint;  // empty on the first incarnation
      send_or_drop(fd, FrameType::Assign, encode_assign(assign));
      s.state = SlotState::Helloed;
      return;
    }

    Slot& s = slots[static_cast<size_t>(conn.slot)];
    s.last_frame = mono_now_ns();
    switch (f.type) {
      case FrameType::Barrier: {
        auto m = parse_barrier(f.payload);
        if (!m.ok()) {
          drop_conn(fd);
          return;
        }
        if (m->kind == BarrierMsg::Kind::Ready) {
          if (s.state == SlotState::Helloed) {
            s.state = SlotState::Ready;
            if (global_start_sent) {
              begin_probes(s);  // respawned incarnation, individual sync
            } else {
              all_ready_check();
            }
          }
          return;
        }
        if (m->kind != BarrierMsg::Kind::Echo ||
            s.state != SlotState::Probing)
          return;
        TimeNs now = mono_now_ns();
        TimeNs rtt = now - m->t_ctrl;
        TimeNs offset = m->t_worker - (m->t_ctrl + now) / 2;
        if (rtt < s.probe.best_rtt) {
          s.probe.best_rtt = rtt;
          s.probe.best_offset = offset;
        }
        ++s.probe.got;
        if (s.probe.got >= cfg.drift_probes) {
          synced(s);
        } else {
          send_probe(s);
        }
        return;
      }
      case FrameType::Heartbeat:
      case FrameType::Progress:
        return;  // last_frame is the supervision signal
      case FrameType::Checkpoint:
        s.last_checkpoint = std::move(f.payload);
        return;
      case FrameType::Report: {
        auto r = parse_report(f.payload);
        if (!r.ok()) {
          LDP_WARN("dist", "worker " << s.index
                                     << " report unparsable: "
                                     << r.error().message);
          drop_conn(fd);
          return;
        }
        s.report = std::move(*r);
        s.have_report = true;
        s.state = SlotState::Reported;
        return;
      }
      default:
        LDP_WARN("dist", "unexpected " << frame_type_name(f.type)
                                       << " from worker " << s.index);
        return;
    }
  }

  void crash(Slot& s) {
    ++s.crashes;
    if (s.fd != -1) drop_conn(s.fd);
    if (s.respawns < cfg.respawn_budget) {
      ++s.respawns;
      std::fprintf(stderr,
                   "worker %zu crashed; respawning (%u/%u)%s\n", s.index,
                   s.respawns, cfg.respawn_budget,
                   s.last_checkpoint.empty() ? " from scratch"
                                             : " from checkpoint");
      spawn(s);
    } else {
      std::fprintf(stderr,
                   "worker %zu crashed; respawn budget exhausted, slice "
                   "reassigned to controller\n",
                   s.index);
      s.state = SlotState::Dead;
      s.fallback = true;
      maybe_barrier();  // the fleet barrier must not wait on a dead slot
    }
  }

  void tick() {
    TimeNs now = mono_now_ns();
    for (auto& s : slots) {
      if (s.reaped) continue;
      int status = 0;
      pid_t r = ::waitpid(s.pid, &status, WNOHANG);
      if (r == s.pid) {
        s.reaped = true;
        // The reap can outrun the poll loop: a worker that wrote REPORT and
        // exited may still have the frame sitting in the socket buffer.
        // Drain the connection before ruling on the exit.
        if (s.state != SlotState::Reported && s.fd >= 0) read_conn(s.fd);
        if (s.state == SlotState::Reported) {
          s.state = SlotState::Dead;  // normal exit after REPORT
        } else {
          crash(s);
        }
        continue;
      }
      // Liveness: any frame beats. Replaying workers get the heartbeat
      // timeout; handshaking incarnations get the barrier deadline.
      if (s.state == SlotState::Started &&
          now - s.last_frame > cfg.heartbeat_timeout) {
        std::fprintf(stderr, "worker %zu heartbeat stale; killing\n", s.index);
        ::kill(s.pid, SIGKILL);
        s.last_frame = now;  // one kill per staleness episode
      } else if (s.state != SlotState::Started &&
                 s.state != SlotState::Reported && now > s.spawn_deadline) {
        std::fprintf(stderr, "worker %zu stuck in handshake; killing\n",
                     s.index);
        ::kill(s.pid, SIGKILL);
        s.spawn_deadline = now + cfg.barrier_timeout;
      }
    }
    if (kill_at != 0 && !kill_done && now >= kill_at) {
      Slot& s = slots[static_cast<size_t>(cfg.kill_worker)];
      if (!s.reaped) {
        std::fprintf(stderr, "injecting kill -9 into worker %zu\n", s.index);
        ::kill(s.pid, SIGKILL);
      }
      kill_done = true;
    }
  }

  bool done() const {
    for (const auto& s : slots) {
      if (s.state == SlotState::Dead || s.state == SlotState::Reported)
        continue;
      return false;
    }
    return true;
  }

  void read_conn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    uint8_t buf[65536];
    while (true) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        drop_conn(fd);
        return;
      }
      if (n == 0) {
        drop_conn(fd);
        return;
      }
      it->second.reader.feed(buf, static_cast<size_t>(n));
      while (true) {
        auto f = it->second.reader.next();
        if (!f.ok()) {
          LDP_WARN("dist", "control stream desync: " << f.error().message);
          drop_conn(fd);
          return;
        }
        if (!f->has_value()) break;
        handle_frame(fd, it->second, std::move(**f));
        it = conns.find(fd);  // handle_frame may have dropped the conn
        if (it == conns.end()) return;
      }
    }
  }

  Result<DistReport> run() {
    trace_origin = trace.front().timestamp;
    for (size_t i = 0; i < cfg.workers; ++i) {
      slots.emplace_back();
      slots.back().index = i;
    }
    for (auto& s : slots) {
      spawn(s);
      if (!failure.ok()) break;
    }

    while (failure.ok() && !done()) {
      std::vector<pollfd> fds;
      fds.push_back(pollfd{listener.fd(), POLLIN, 0});
      for (const auto& [fd, conn] : conns)
        fds.push_back(pollfd{fd, POLLIN, 0});
      int rc = ::poll(fds.data(), fds.size(), 50);
      if (rc < 0 && errno != EINTR)
        return Err(std::string("poll: ") + std::strerror(errno));
      if (rc > 0) {
        if (fds[0].revents & POLLIN) {
          while (true) {
            auto accepted = listener.accept();
            if (!accepted.ok()) return accepted.error();
            if (!accepted->has_value()) break;
            int cfd = (*accepted)->fd();
            conns.emplace(cfd, Conn{std::move(**accepted), FrameReader{}, -1});
          }
        }
        for (size_t i = 1; i < fds.size(); ++i) {
          if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
            read_conn(fds[i].fd);
        }
      }
      tick();
    }
    // Reap stragglers: every worker either already exited (normal path) or
    // is being abandoned because of a controller-side failure.
    for (auto& s : slots) {
      if (s.reaped) continue;
      if (!failure.ok()) ::kill(s.pid, SIGKILL);
      int status = 0;
      ::waitpid(s.pid, &status, 0);
      s.reaped = true;
    }
    LDP_TRY_VOID(failure);

    // Budget-exhausted slices finish in-process from their last checkpoint —
    // the single-host stand-in for reassigning the sources to another
    // machine. Runs after the fleet so the loopback server sees the same
    // concurrency the workers produced.
    DistReport out;
    out.workers.resize(slots.size());
    EngineReport merged;
    std::vector<std::vector<trace::TraceRecord>> slices;
    for (auto& s : slots) {
      if (!s.fallback) continue;
      if (slices.empty()) slices = partition_by_source(trace, slots.size());
      auto& slice = slices[s.index];
      out.workers[s.index].fallback = true;
      if (slice.empty()) continue;
      EngineConfig ec;
      ec.server = cfg.server;
      ec.timed = cfg.timed;
      ec.batched_io = cfg.batched_io;
      ec.distributors = cfg.distributors;
      ec.queriers_per_distributor = cfg.queriers_per_distributor;
      ec.checkpoint_interval = cfg.checkpoint_interval;
      if (!cfg.fault_spec.empty()) {
        auto spec = fault::parse_fault_spec(cfg.fault_spec);
        if (!spec.ok()) return spec.error();
        ec.fault = *spec;
      }
      CheckpointState resume_state;
      if (!s.last_checkpoint.empty()) {
        resume_state = LDP_TRY(parse_checkpoint(s.last_checkpoint));
        ec.resume = &resume_state;
      }
      std::fprintf(stderr, "replaying worker %zu's slice in-process (%zu queries)\n",
                   s.index, slice.size());
      QueryEngine engine(ec);
      EngineReport r = LDP_TRY(engine.replay(slice));
      merged.merge_from(std::move(r));
    }

    for (auto& s : slots) {
      WorkerStat& w = out.workers[s.index];
      w.crashes = s.crashes;
      w.respawns = s.respawns;
      w.drift = s.offset_is_initial ? s.offset : 0;
      if (s.have_report) {
        if (s.started_by_barrier && s.respawns == 0 && cfg.timed &&
            s.report.replay_start > 0) {
          TimeNs mis = s.report.replay_start - barrier_start;
          w.misalign = mis;
          w.have_misalign = true;
          out.any_misalign = true;
          out.max_abs_misalign =
              std::max<TimeNs>(out.max_abs_misalign, mis < 0 ? -mis : mis);
        }
        merged.merge_from(std::move(s.report));
      } else if (!s.fallback) {
        return Err("worker " + std::to_string(s.index) +
                   " finished without a report");
      }
      merged.worker_crashes += s.crashes;
      merged.workers_respawned += s.respawns;
    }
    merged.max_drift_ns = std::max<int64_t>(merged.max_drift_ns, max_drift);
    out.report = std::move(merged);
    return out;
  }
};

}  // namespace

Result<DistReport> run_distributed(const DistConfig& cfg) {
  if (cfg.workers < 1 || cfg.workers > 64)
    return Err("workers must be between 1 and 64");
  if (cfg.worker_bin.empty()) return Err("worker binary path is empty");
  if (cfg.kill_worker >= static_cast<int64_t>(cfg.workers))
    return Err("kill_worker index out of range");
  if (::access(cfg.worker_bin.c_str(), X_OK) != 0)
    return Err("worker binary not executable: " + cfg.worker_bin);

  auto trace = LDP_TRY(trace::load_trace_file(cfg.trace_path));
  if (trace.empty()) return Err("empty trace");

  auto loopback = LDP_TRY(IpAddr::parse("127.0.0.1"));
  auto listener =
      LDP_TRY(net::TcpListener::listen(Endpoint{loopback, 0}, 64));
  Endpoint ep = LDP_TRY(listener.local_endpoint());

  Controller ctl(cfg, std::move(trace), std::move(listener), ep);
  return ctl.run();
}

}  // namespace ldp::replay::dist
