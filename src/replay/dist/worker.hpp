// The querier worker process (paper §3: queriers run on separate client
// hosts). ldp-worker connects back to the controller, receives its slice
// assignment, answers barrier/drift probes, replays on the barrier start
// instant, streams HEARTBEAT/PROGRESS/CHECKPOINT frames while running, and
// ships its EngineReport before exiting.
#pragma once

#include <string>

#include "util/clock.hpp"
#include "util/ip.hpp"

namespace ldp::replay::dist {

struct WorkerOptions {
  Endpoint controller;     ///< where to dial the control channel
  std::string trace_path;  ///< the shared trace file (sliced by ASSIGN)
  int64_t index = -1;      ///< advisory; ASSIGN's index is authoritative
  /// Test-only simulated clock skew: every control-protocol timestamp this
  /// worker emits (probe echoes, heartbeats) reads mono_now_ns() + skew, and
  /// protocol instants it receives are converted back before touching the
  /// engine's monotonic clock — exactly the situation a worker on a second
  /// machine with a drifted clock would be in. 0 = honest clock.
  TimeNs skew = 0;
};

/// Run the worker lifecycle to completion. Returns the process exit code:
/// 0 after a delivered REPORT, 1 on any control-channel or replay failure
/// (the controller's supervisor treats a pre-REPORT exit as a crash).
int run_worker(const WorkerOptions& opts);

}  // namespace ldp::replay::dist
