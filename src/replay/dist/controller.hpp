// The distributed-replay controller: forks N ldp-worker processes, drives
// the control protocol (protocol.hpp) over one loopback TCP connection per
// worker, and supervises them the way PR 4's Supervisor watches querier
// threads — except the unit of failure is a whole process.
//
// Lifecycle per worker slot:
//
//   Spawned → Helloed → Assigned → Ready → Synced → Started → Reported
//      ▲                                                │
//      └── crash (SIGCHLD reap / stale heartbeat kill) ─┘
//
// A crash decrements the slot's respawn budget and respawns the same index
// with the crashed incarnation's last CHECKPOINT blob in the ASSIGN frame,
// so the new process resumes where the old one snapshot. When the budget is
// exhausted the controller reassigns the slice to itself: the unfinished
// sources replay in-process from the last checkpoint after the surviving
// workers finish (the single-host stand-in for handing the slice to a
// different machine).
//
// Barrier start: once every worker is Ready the controller runs NTP-style
// probe/echo rounds per worker (minimum-RTT sample wins; offset = worker
// stamp − probe midpoint), picks one start instant t₁ = now + lead, and
// STARTs each worker at t₁ + offsetᵢ *in that worker's clock* — so skewed
// workers still fire simultaneously in real time. max |offsetᵢ| lands in
// EngineReport::max_drift_ns.
#pragma once

#include <string>
#include <vector>

#include "replay/engine.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"

namespace ldp::replay::dist {

struct DistConfig {
  size_t workers = 2;
  std::string worker_bin;  ///< path to the ldp-worker executable
  std::string trace_path;  ///< trace file every worker loads and slices
  Endpoint server;
  bool timed = true;
  bool batched_io = true;
  size_t distributors = 1;
  size_t queriers_per_distributor = 2;
  std::string fault_spec;  ///< forwarded to workers verbatim ("" = clean)
  TimeNs heartbeat_interval = 250 * kMilli;
  TimeNs heartbeat_timeout = 5 * kSecond;
  TimeNs checkpoint_interval = kSecond;
  uint32_t respawn_budget = 2;  ///< respawns per worker before reassignment
  /// Apply the measured per-worker clock offset to the start instant. Off
  /// exists for the drift-regression test (how bad is an uncorrected skewed
  /// worker?); production runs always correct.
  bool correct_drift = true;
  uint32_t drift_probes = 7;       ///< probe/echo rounds per worker
  TimeNs start_lead = 500 * kMilli;
  TimeNs barrier_timeout = 30 * kSecond;
  /// Test knobs. worker_skew[i] is handed to worker i as --skew-ns (see
  /// WorkerOptions::skew). kill_worker >= 0 SIGKILLs that worker once,
  /// kill_after past the barrier start — the deterministic stand-in for
  /// `kill -9` in the crash-resume tests and the fig6 dist bench.
  std::vector<TimeNs> worker_skew;
  int64_t kill_worker = -1;
  TimeNs kill_after = kSecond;
};

/// Per-worker outcome for the caller's summary (index-aligned with slots).
struct WorkerStat {
  uint32_t crashes = 0;
  uint32_t respawns = 0;
  TimeNs drift = 0;  ///< measured offset at the initial barrier
  /// |replay_start − barrier start instant| on the controller's clock: the
  /// ground-truth start misalignment (workers share CLOCK_MONOTONIC on one
  /// host, so this is exact). Only workers started by the global barrier
  /// and never respawned report one.
  TimeNs misalign = 0;
  bool have_misalign = false;
  bool fallback = false;  ///< slice finished in-process (budget exhausted)
};

struct DistReport {
  EngineReport report;  ///< merged across workers + fallbacks
  std::vector<WorkerStat> workers;
  TimeNs max_abs_misalign = 0;
  bool any_misalign = false;
};

Result<DistReport> run_distributed(const DistConfig& cfg);

}  // namespace ldp::replay::dist
