// Control protocol for distributed replay (paper §3: controller and
// queriers as separate processes). One TCP connection per worker carries
// length-prefixed frames:
//
//   u32 length (big-endian, = 1 + payload bytes) | u8 type | payload
//
// The DNS data path keeps its 2-byte RFC 1035 framing; the control channel
// needs its own 4-byte prefix because CHECKPOINT/ASSIGN frames carry whole
// engine snapshots that do not fit in 65535 octets. Payloads are the same
// line-oriented text the checkpoint files use — greppable on the wire,
// versioned by the HELLO exchange.
//
// Frame flow (worker lifecycle):
//   worker → HELLO → controller
//   controller → ASSIGN (slice + engine knobs, resume blob on respawn)
//   worker → BARRIER ready; controller ↔ BARRIER probe/echo (drift rounds)
//   controller → START (trace origin + barrier start instant + offset)
//   worker → HEARTBEAT / PROGRESS / CHECKPOINT (periodic, during replay)
//   worker → REPORT (final counters + per-send records), then exits 0.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "replay/engine.hpp"
#include "trace/record.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"
#include "util/result.hpp"

namespace ldp::replay::dist {

inline constexpr uint32_t kProtocolVersion = 1;
/// Upper bound on one frame's payload — a whole checkpoint or report rides
/// in one frame, but a corrupt length prefix must not allocate the moon.
inline constexpr size_t kMaxFramePayload = 64u << 20;

enum class FrameType : uint8_t {
  Hello = 1,
  Assign = 2,
  Barrier = 3,
  Start = 4,
  Heartbeat = 5,
  Progress = 6,
  Checkpoint = 7,
  Report = 8,
};

const char* frame_type_name(FrameType t);

struct Frame {
  FrameType type = FrameType::Hello;
  std::string payload;
};

/// Blocking, EINTR-safe, SIGPIPE-safe frame I/O (net::write_full /
/// net::read_full underneath). recv returns nullopt on a clean EOF at a
/// frame boundary.
Result<void> send_frame(int fd, FrameType type, std::string_view payload);
Result<std::optional<Frame>> recv_frame(int fd);

/// Incremental decoder for the controller's poll loop: feed() whatever
/// recv() produced, then drain next() until it returns nullopt.
class FrameReader {
 public:
  void feed(const uint8_t* data, size_t n);
  /// A complete frame, nullopt when more bytes are needed, or an Error on a
  /// malformed prefix (oversized or zero-length frame) — the connection is
  /// then unusable.
  Result<std::optional<Frame>> next();

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix, compacted lazily
};

// --- message payloads ------------------------------------------------------

struct HelloMsg {
  uint32_t version = kProtocolVersion;
  int64_t worker = -1;
  int64_t pid = 0;
};
std::string encode_hello(const HelloMsg& m);
Result<HelloMsg> parse_hello(const std::string& payload);

/// Everything a worker needs to replay its slice: which slice (index/count
/// over the shared partition of the trace file named on its command line),
/// where to send, and the engine knobs the controller chose. `resume` is
/// empty for a fresh start; on respawn it carries the crashed incarnation's
/// last checkpoint verbatim.
struct AssignMsg {
  size_t index = 0;
  size_t count = 1;
  Endpoint server;
  bool timed = true;
  bool batched_io = true;
  size_t distributors = 1;
  size_t queriers = 2;
  TimeNs heartbeat_interval = 250 * kMilli;
  TimeNs checkpoint_interval = kSecond;
  std::string fault_spec;  ///< empty = clean link
  std::string resume;      ///< serialized checkpoint, or empty
};
std::string encode_assign(const AssignMsg& m);
Result<AssignMsg> parse_assign(const std::string& payload);

/// BARRIER carries three shapes: the worker's `ready`, then `probe`/`echo`
/// drift-measurement rounds (NTP-style: the controller keeps the echo with
/// the smallest round trip; offset = t_worker − midpoint of the two
/// controller stamps).
struct BarrierMsg {
  enum class Kind : uint8_t { Ready = 0, Probe = 1, Echo = 2 };
  Kind kind = Kind::Ready;
  uint32_t seq = 0;
  TimeNs t_ctrl = 0;    ///< controller clock, stamped on probe send
  TimeNs t_worker = 0;  ///< worker clock, stamped on echo
};
std::string encode_barrier(const BarrierMsg& m);
Result<BarrierMsg> parse_barrier(const std::string& payload);

struct StartMsg {
  TimeNs trace_origin = 0;  ///< t̄₁: first record timestamp of the whole trace
  TimeNs start_at = 0;      ///< t₁ in the *worker's* clock (offset applied)
  TimeNs offset = 0;        ///< the measured drift, for the worker's banner
};
std::string encode_start(const StartMsg& m);
Result<StartMsg> parse_start(const std::string& payload);

struct ProgressMsg {
  uint64_t sent = 0;
  uint64_t received = 0;
};
std::string encode_progress(const ProgressMsg& m);
Result<ProgressMsg> parse_progress(const std::string& payload);

// HEARTBEAT's payload is the worker clock as decimal text (informational);
// CHECKPOINT's payload is a serialized checkpoint verbatim.

/// REPORT: the worker's final EngineReport. Counters ride in the checkpoint
/// line format; per-send records (the fig6 fidelity data) are appended one
/// per line. send_time/trace_time stay absolute — worker and controller
/// share CLOCK_MONOTONIC on one host, which is also what makes
/// replay_start usable as the barrier-alignment ground truth.
std::string encode_report(const EngineReport& r);
Result<EngineReport> parse_report(const std::string& payload);

/// The shared slice partition: query records only, sticky by source in
/// first-appearance order (the replay_sharded policy). Worker `i` of `n`
/// replays partition_by_source(trace, n)[i]; the controller uses the same
/// function for the reassignment fallback, so both sides always agree on
/// who owns which source without ever shipping the trace over the wire.
std::vector<std::vector<trace::TraceRecord>> partition_by_source(
    const std::vector<trace::TraceRecord>& trace, size_t n);

}  // namespace ldp::replay::dist
