// Multi-controller replay (§2.6: "If the input trace is extremely fast, the
// CPU of Controller may become bottleneck ... we can split input stream to
// feed multiple controllers").
//
// The trace is partitioned by query source address (sticky, so the
// same-source/connection-reuse invariants still hold — a source never
// spans controllers) into N slices; each slice gets its own QueryEngine
// running on its own thread, and every engine replays against one shared
// synchronization point so the merged send schedule matches a
// single-controller replay of the whole trace.
#pragma once

#include "replay/engine.hpp"

namespace ldp::replay {

struct MultiControllerConfig {
  EngineConfig engine;      ///< per-controller engine configuration
  size_t controllers = 2;   ///< input-stream split factor
};

/// Partition `trace` by source and replay all slices concurrently.
/// Returns the merged report (sends from all controllers, unsorted).
Result<EngineReport> replay_multi_controller(
    const std::vector<trace::TraceRecord>& trace, const MultiControllerConfig& config);

}  // namespace ldp::replay
