// The distributed query engine (§2.6, §3): Controller (Reader + Postman) →
// Distributors → Queriers, with same-source stickiness at every level so
// connection reuse can be emulated faithfully.
//
// Substitution note (DESIGN.md): the paper runs distributors/queriers as
// processes on separate client hosts connected by TCP; here they are
// threads connected by bounded queues. The query path itself — the part
// whose timing the evaluation validates — uses real UDP/TCP sockets against
// a real server endpoint, and the §2.6 scheduling math runs unchanged.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <thread>

#include "fault/fault.hpp"
#include "mutate/mutator.hpp"
#include "net/event_loop.hpp"
#include "net/impaired.hpp"
#include "net/socket.hpp"
#include "replay/pending.hpp"
#include "replay/schedule.hpp"
#include "trace/record.hpp"
#include "util/metrics.hpp"
#include "util/queue.hpp"
#include "util/stats.hpp"

namespace ldp::replay {

struct CheckpointState;  // checkpoint.hpp (engine.cpp includes it)

/// What a distributor does when a querier queue stays full past the grace
/// period (a stalled or overloaded consumer). Block preserves every query
/// at the cost of stalling the controller clock; the shedding policies
/// keep the clock honest and account for what they cost.
enum class OverloadPolicy : uint8_t {
  Block = 0,      ///< wait forever (back-pressure; recovery unblocks via close)
  DropOldest = 1, ///< evict the oldest queued record, counted as shed
  ClampRate = 2,  ///< keep blocking but account the stall time
};

struct EngineConfig {
  Endpoint server;            ///< where replayed queries go
  size_t distributors = 1;
  size_t queriers_per_distributor = 2;
  /// Sharded querier pool: with shards > 1, replay() partitions the trace
  /// by source (sticky — a source never spans shards, so connection reuse
  /// and same-source ordering hold) into this many slices and runs each
  /// through its own full worker pipeline (distributors × queriers, own
  /// event loops) on a shared replay clock, merging the per-shard reports
  /// after the joins. The per-source fault-draw schedule is a function of
  /// the seed alone ("udp:<src>"/"tcp:<src>" stream names), so fixed-seed
  /// impairment counters are identical at any shard count. shards == 1 is
  /// byte-for-byte the unsharded code path. With checkpoint_path set, each
  /// shard snapshots its own slice to `<path>.shard<N>`; resume takes the
  /// matching per-shard states via `resume_shards`.
  size_t shards = 1;
  /// Timed replay reproduces trace timing; fast mode sends as fast as
  /// possible (§2.6 "replay as fast as possible" option, Figure 9).
  bool timed = true;
  /// Client-side close for idle TCP/TLS connections (§2.6: "queriers also
  /// track open TCP connections ... close them after a pre-set timeout").
  TimeNs tcp_idle_timeout = 20 * kSecond;
  /// Stop waiting for outstanding responses this long after the last send.
  TimeNs drain_grace = 2 * kSecond;
  /// Query lifecycle (PendingTable): a query unanswered after this long is
  /// retransmitted (UDP) or resent (TCP), with the wait doubling per
  /// attempt up to retry_backoff_cap; once max_retries attempts are spent
  /// the entry expires and leaves the pending table, so long replays never
  /// accumulate unanswered state. max_retries = 0 keeps the timeout/expiry
  /// accounting but never retransmits.
  TimeNs query_timeout = kSecond;
  uint32_t max_retries = 2;
  TimeNs retry_backoff_cap = 8 * kSecond;
  /// Re-establish a TCP connection that dropped with unanswered queries
  /// still pending, resending them (each resend consumes one retry from the
  /// affected queries), at most this many times per source.
  bool tcp_reconnect = true;
  uint32_t max_tcp_reconnects = 2;
  size_t queue_capacity = 4096;
  /// Batched UDP I/O: queries staged during one event-loop round leave in a
  /// single sendmmsg per socket (flushed before the loop blocks), and
  /// responses drain via recvmmsg. Post-send accounting replicates the
  /// scalar path exactly, so fixed-seed runs report identical counters
  /// either way. Off = one syscall per datagram (kept for A/B measurement
  /// and the scalar/batched equivalence tests).
  bool batched_io = true;
  /// Live query mutation (§2.2: "query mutator can run live with query
  /// replay"): applied by the controller to each record before dispatch.
  /// The pipeline must outlive the replay. Records the mutator drops or
  /// cannot decode are skipped and counted.
  const mutate::MutatorPipeline* live_mutator = nullptr;
  /// Network impairment scenario (ldp::fault) applied to the query path:
  /// every per-source socket / connection sends through its own named
  /// FaultStream ("udp:<src>" / "tcp:<src>"), so the impairment pattern a
  /// source sees is a function of the seed alone — identical regardless of
  /// how sources are spread over queriers or controllers. nullopt = clean
  /// link.
  std::optional<fault::FaultSpec> fault;
  /// Self-healing layer: a supervisor thread watches querier/distributor
  /// heartbeats and recovers a stalled querier (reassigning its sources to
  /// a sibling and resending its in-flight queries). Disabling supervision
  /// also disables querier_stall fault injection (nothing would recover
  /// the stalled thread).
  bool supervise = true;
  TimeNs heartbeat_timeout = 5 * kSecond;
  TimeNs supervision_interval = 500 * kMilli;
  /// Overload shedding for the controller→distributor→querier queues:
  /// how long a push may wait before the policy kicks in.
  OverloadPolicy overload = OverloadPolicy::Block;
  TimeNs shed_grace = 5 * kMilli;
  /// Deterministic checkpoint/resume: when `checkpoint_path` is set, the
  /// supervisor periodically snapshots per-source trace positions, fault
  /// stream draw positions and in-flight queries to the file (atomically,
  /// tmp+rename), and a final quiescent snapshot is written when the
  /// replay completes. `resume` replays only what the checkpoint hasn't
  /// sent and folds the checkpoint's counters into the final report; it
  /// must outlive the replay() call.
  std::string checkpoint_path;
  TimeNs checkpoint_interval = kSecond;
  const CheckpointState* resume = nullptr;
  /// Per-shard resume states for shards > 1 (size must equal `shards`,
  /// same partition as the run that wrote them — the per-slice trace
  /// fingerprints catch a mismatched shard count). A default-constructed
  /// entry (trace_hash 0) means that shard never snapshot and replays its
  /// slice from the start. Mutually exclusive with `resume`.
  const std::vector<CheckpointState>* resume_shards = nullptr;
  /// In-memory checkpoint consumer: called with each periodic snapshot (and
  /// the final quiescent one) in addition to — or instead of — the file at
  /// checkpoint_path. The distributed worker wires this to CHECKPOINT
  /// control frames so the controller always holds a fresh resume point.
  /// Runs on the supervisor thread; must be cheap and must not call back
  /// into the engine. Only valid with shards == 1 (a per-shard sink would
  /// interleave unrelated slices).
  std::function<void(const CheckpointState&)> checkpoint_sink;

  /// True when any checkpoint consumer is configured — queriers then track
  /// snapshot state (per-source sent counts, stream positions, pending).
  bool checkpointing() const {
    return !checkpoint_path.empty() || checkpoint_sink != nullptr;
  }
};

/// One sent query, for the Figures 6-8 fidelity analysis.
struct SendRecord {
  TimeNs trace_time;   ///< original timestamp (ns, trace timeline)
  TimeNs send_time;    ///< actual send (ns, monotonic timeline)
  TimeNs latency = -1; ///< response latency from first send; -1 if unanswered
  IpAddr source;       ///< original trace source (per-source fault analysis)
  uint32_t querier = 0;
  uint32_t retries = 0;  ///< retransmits this query needed
  QueryOutcome outcome = QueryOutcome::Pending;
};

struct EngineReport {
  std::vector<SendRecord> sends;  ///< in send order per querier, merged
  uint64_t queries_sent = 0;
  uint64_t responses_received = 0;
  uint64_t send_errors = 0;
  uint64_t connections_opened = 0;
  uint64_t mutator_dropped = 0;  ///< records removed by the live mutator
  /// Peak number of simultaneously in-flight queries in any one querier;
  /// bounded by the expiry window, so long replays with loss stay flat.
  uint64_t max_in_flight = 0;
  // Self-healing layer accounting.
  uint64_t querier_failures = 0;    ///< queriers declared dead and recovered
  uint64_t sources_reassigned = 0;  ///< sticky sources moved to a sibling
  uint64_t shed_queries = 0;        ///< records dropped by overload shedding
  uint64_t queue_hwm = 0;           ///< deepest any worker queue ever got
  uint64_t clamp_stall_ns = 0;      ///< time ClampRate spent blocked on full queues
  // Distributed-replay accounting (src/replay/dist/): processes, not threads.
  uint64_t worker_crashes = 0;      ///< worker processes that died mid-replay
  uint64_t workers_respawned = 0;   ///< crashes answered with a respawn+resume
  int64_t max_drift_ns = 0;         ///< largest |worker-clock offset| measured
  metrics::LifecycleCounters lifecycle;  ///< timeout/retry/expiry accounting
  fault::ImpairmentCounters impairments; ///< what the fault layer did to us
  metrics::Histogram latency_hist;       ///< answered-query latency (ns)
  TimeNs replay_start = 0;  ///< monotonic t₁
  TimeNs replay_end = 0;

  double duration_s() const { return ns_to_sec(replay_end - replay_start); }
  double rate_qps() const {
    double d = duration_s();
    return d > 0 ? static_cast<double>(queries_sent) / d : 0;
  }
  /// Queries that never produced an answer (timed out, errored, abandoned).
  uint64_t lost() const { return lifecycle.expired; }

  /// Fold another report (one querier's, one distributor's, one
  /// controller's) into this one: counters sum, histograms merge, send
  /// records append, and replay_start/replay_end widen to cover both.
  void merge_from(EngineReport&& other);
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineConfig config);
  ~QueryEngine();

  /// Replay a time-ordered query trace; blocks until every query is sent
  /// and responses have drained (or the grace period lapses).
  ///
  /// `shared_clock` lets several engines replay slices of one trace on a
  /// common timeline (§2.6 "split input stream to feed multiple
  /// controllers"); it must already be started. Pass nullptr to let this
  /// engine latch its own synchronization point.
  Result<EngineReport> replay(const std::vector<trace::TraceRecord>& trace,
                              const ReplayClock* shared_clock = nullptr);

 private:
  class Querier;
  class Distributor;

  /// The shards > 1 path: partition by source, one sub-engine per shard on
  /// its own thread, one shared clock, merge-after-join.
  Result<EngineReport> replay_sharded(const std::vector<trace::TraceRecord>& trace,
                                      const ReplayClock* shared_clock);

  EngineConfig config_;
  // Same-source stickiness: controller level (source -> distributor).
  std::unordered_map<IpAddr, size_t, IpAddrHash> source_to_distributor_;
  size_t next_distributor_ = 0;
};

}  // namespace ldp::replay
