#include "replay/multi.hpp"

namespace ldp::replay {

using trace::TraceRecord;

Result<EngineReport> replay_multi_controller(const std::vector<TraceRecord>& trace,
                                             const MultiControllerConfig& config) {
  if (trace.empty()) return Err("empty trace");
  size_t n = std::max<size_t>(1, config.controllers);

  // Sticky partition by source address; slices preserve time order because
  // the input is scanned in order.
  std::vector<std::vector<TraceRecord>> slices(n);
  for (const auto& rec : trace) {
    if (rec.direction != trace::Direction::Query) continue;
    slices[rec.src.addr.hash() % n].push_back(rec);
  }

  // One shared synchronization point (t̄₁ from the whole trace).
  ReplayClock clock;
  clock.start(trace.front().timestamp, mono_now_ns() + 200 * kMilli);

  struct Slot {
    std::optional<Result<EngineReport>> result;
  };
  std::vector<Slot> slots(n);
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<QueryEngine>> engines;
  threads.reserve(n);
  engines.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    engines.push_back(std::make_unique<QueryEngine>(config.engine));
    threads.emplace_back([&clock, &slices, &slots, &engines, i] {
      if (slices[i].empty()) {
        slots[i].result = EngineReport{};
        return;
      }
      slots[i].result = engines[i]->replay(slices[i], &clock);
    });
  }
  for (auto& t : threads) t.join();

  EngineReport merged;
  merged.replay_start = clock.real_origin();
  for (auto& slot : slots) {
    if (!slot.result.has_value()) return Err("controller produced no report");
    if (!slot.result->ok()) return Err(slot.result->error().message);
    merged.merge_from(std::move(slot.result->value()));
  }
  return merged;
}

}  // namespace ldp::replay
