// Deterministic checkpoint/resume for the replay engine: a CheckpointState
// snapshots everything a fixed-seed replay needs to continue after the
// process dies — per-source trace positions (how many queries of each
// source are already on the wire), the draw positions of every named fault
// stream, the merged counters/histogram so far, and the in-flight queries
// with their payloads so a resumed run can adopt and resend them.
//
// The cut is per-querier consistent: each querier publishes its own
// snapshot atomically, so a source's sent-count, stream position and
// pending list always agree with each other. Queries sent after the last
// snapshot but before the kill are re-sent exactly once on resume (their
// sent-counts weren't recorded), so queries_sent totals stay exact; the
// probability-driven impairment counters are draw-order independent, and
// the window faults (blackhole, flap) re-anchor via origin offsets stored
// relative to the replay clock origin.
//
// Files are plain line-oriented text, written atomically (tmp + rename) so
// a kill mid-write leaves the previous snapshot intact.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "replay/engine.hpp"
#include "trace/record.hpp"
#include "util/result.hpp"
#include "util/transport.hpp"

namespace ldp::replay {

/// One in-flight query captured at the cut: enough to resend it on resume
/// (payload + transport + source for socket routing) and to resolve its
/// original send record when the answer finally arrives.
struct CheckpointPending {
  SendRecord record;  ///< outcome Pending; send_time reset on adoption
  Transport transport = Transport::Udp;
  uint32_t retries_used = 0;
  std::vector<uint8_t> payload;
};

struct CheckpointState {
  uint64_t trace_hash = 0;     ///< fingerprint of the trace being replayed
  uint64_t trace_queries = 0;  ///< query records in that trace
  /// Counters and latency histogram accumulated before the cut. `sends`
  /// is not serialized (per-record fidelity data does not survive a kill;
  /// the resumed report carries only the resumed portion's records).
  EngineReport partial;
  std::vector<CheckpointPending> pending;
  /// Named fault-stream draw positions ("udp:<src>" / "tcp:<src>").
  std::map<std::string, fault::FaultStream::Position> streams;
  /// Cumulative queries sent per original trace source (keys are the
  /// canonical IpAddr string form). The resume path skips this many query
  /// records of each source before sending again.
  std::map<std::string, uint64_t> sent;
};

/// Stable fingerprint of a trace (timestamps, sources, payload shapes) so
/// resume refuses to continue a checkpoint against a different trace.
uint64_t trace_fingerprint(const std::vector<trace::TraceRecord>& trace);

/// The checkpoint wire form: the same line-oriented text the file holds.
/// Split out from the file I/O so the distributed control channel can carry
/// snapshots in CHECKPOINT/ASSIGN frames without touching disk.
std::string serialize_checkpoint(const CheckpointState& state);
Result<CheckpointState> parse_checkpoint(const std::string& text);

/// Atomic write: the file at `path` is either the previous snapshot or the
/// new one, never a torn mix.
Result<void> save_checkpoint(const std::string& path,
                             const CheckpointState& state);

Result<CheckpointState> load_checkpoint(const std::string& path);

/// Per-shard snapshot naming for sharded runs: `<path>.shard<N>`. Each shard
/// engine checkpoints its own slice; resume loads all of them back.
std::string shard_checkpoint_path(const std::string& path, size_t shard);

/// Load `<path>.shard0` … `<path>.shard<N-1>` for a `--shards N` resume.
/// A missing shard file means the run died before that shard's first
/// snapshot: its slot comes back default-constructed (trace_hash 0) and the
/// engine replays that slice from the start — the same "everything after the
/// last snapshot is re-sent exactly once" contract as the single-shard path.
/// At least one shard file must exist, otherwise there is nothing to resume.
Result<std::vector<CheckpointState>> load_sharded_checkpoints(
    const std::string& path, size_t shards);

}  // namespace ldp::replay
