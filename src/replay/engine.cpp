#include "replay/engine.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/log.hpp"

namespace ldp::replay {

using trace::TraceRecord;

namespace {
constexpr TimeNs kStartupLead = 100 * kMilli;  // let worker threads spin up
// Resend delay for queries that never reached the wire (kernel buffer
// full): short, so the backlog clears as soon as the kernel drains.
constexpr TimeNs kDeferredSendDelay = 10 * kMilli;
}  // namespace

void EngineReport::merge_from(EngineReport&& other) {
  queries_sent += other.queries_sent;
  responses_received += other.responses_received;
  send_errors += other.send_errors;
  connections_opened += other.connections_opened;
  mutator_dropped += other.mutator_dropped;
  max_in_flight = std::max(max_in_flight, other.max_in_flight);
  lifecycle.merge(other.lifecycle);
  impairments.merge(other.impairments);
  latency_hist.merge(other.latency_hist);
  replay_end = std::max(replay_end, other.replay_end);
  // Fast mode sends before the startup-lead origin; lower the start to the
  // first real send so duration/rate stay meaningful (timed sends are never
  // earlier than the origin, so this is a no-op there).
  for (const auto& sr : other.sends) {
    if (replay_start == 0 || sr.send_time < replay_start)
      replay_start = sr.send_time;
  }
  sends.insert(sends.end(), std::make_move_iterator(other.sends.begin()),
               std::make_move_iterator(other.sends.end()));
}

// ---------------------------------------------------------------------------
// Querier: one thread, one event loop, sockets pinned per query source.
// Every in-flight query lives in exactly one PendingTable (per UDP socket /
// per TCP connection) from send until a terminal outcome: answered,
// timed-out after the retry budget, or errored. A single lifecycle timer,
// armed at the earliest deadline across tables, drives retransmits and
// expiry, so pending state is bounded by the retry window even when the
// server never answers.
// ---------------------------------------------------------------------------
class QueryEngine::Querier {
 public:
  Querier(uint32_t id, const EngineConfig& config, const ReplayClock& clock)
      : id_(id), config_(config), clock_(clock), queue_(config.queue_capacity) {
    wake_fd_ = net::Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    thread_ = std::thread([this] { run(); });
  }

  ~Querier() {
    if (thread_.joinable()) thread_.join();
  }

  /// Called from the distributor thread.
  void submit(TraceRecord rec) {
    queue_.push(std::move(rec));
    wake();
  }
  void finish() {
    queue_.close();
    wake();
  }

  EngineReport take_report() {
    if (thread_.joinable()) thread_.join();
    return std::move(report_);
  }

 private:
  struct UdpSock {
    std::unique_ptr<net::ImpairedUdpSocket> sock;
    PendingTable pending;
  };

  struct TcpConn {
    net::TcpStream stream;
    bool connected = false;
    TimeNs last_activity = 0;
    uint32_t reconnects_used = 0;  // reconnect budget consumed for this source
    std::vector<std::vector<uint8_t>> backlog;  // queued until connected
    PendingTable pending;
    // Per-source impairment stream (owned by the querier's stream map, so
    // the draw sequence survives reconnects).
    fault::FaultStream* fault = nullptr;

    explicit TcpConn(net::TcpStream s) : stream(std::move(s)) {}
  };

  /// Per-source fault stream, created on first use; nullptr when the
  /// engine runs without an impairment scenario. The name is derived from
  /// the *original trace source*, not the querier, so the pattern a source
  /// sees is partition-independent (multi-controller equivalence).
  fault::FaultStream* fault_stream(const char* prefix, const IpAddr& source) {
    if (!config_.fault.has_value()) return nullptr;
    std::string name = std::string(prefix) + source.to_string();
    auto it = fault_streams_.find(name);
    if (it == fault_streams_.end()) {
      it = fault_streams_
               .emplace(name, std::make_unique<fault::FaultStream>(*config_.fault,
                                                                   name))
               .first;
    }
    return it->second.get();
  }

  void wake() {
    uint64_t one = 1;
    ssize_t r = ::write(wake_fd_.get(), &one, sizeof(one));
    (void)r;
  }

  void run() {
    auto add = loop_.add_fd(wake_fd_.get(), net::Interest{true, false},
                            [this](bool, bool) { on_wake(); });
    if (!add.ok()) return;
    loop_.run();
    finalize_report();
  }

  void on_wake() {
    uint64_t buf;
    while (::read(wake_fd_.get(), &buf, sizeof(buf)) > 0) {
    }
    // Drain the input queue without blocking: try_pop via size probe.
    while (true) {
      if (queue_.size() == 0) break;
      auto rec = queue_.pop();
      if (!rec.has_value()) break;
      handle_record(std::move(*rec));
    }
    if (queue_.closed_and_empty()) {
      input_done_ = true;
      maybe_finish();
    }
  }

  void handle_record(TraceRecord rec) {
    if (config_.timed) {
      TimeNs deadline = clock_.deadline_for(rec.timestamp);
      if (deadline > mono_now_ns()) {
        ++pending_timers_;
        auto shared = std::make_shared<TraceRecord>(std::move(rec));
        loop_.add_timer_at(deadline, [this, shared] {
          --pending_timers_;
          send_query(*shared);
          maybe_finish();
        });
        return;
      }
    }
    send_query(rec);  // behind schedule or fast mode: send immediately
  }

  void note_in_flight(int64_t delta) {
    in_flight_ += delta;
    report_.max_in_flight =
        std::max(report_.max_in_flight, static_cast<uint64_t>(in_flight_));
  }

  void fail_send(size_t index) {
    ++report_.send_errors;
    report_.sends[index].outcome = QueryOutcome::Errored;
  }

  void send_query(const TraceRecord& rec) {
    size_t index = report_.sends.size();
    SendRecord sr;
    sr.trace_time = rec.timestamp;
    sr.send_time = mono_now_ns();
    sr.source = rec.src.addr;
    sr.querier = id_;
    report_.sends.push_back(sr);
    ++report_.queries_sent;
    last_send_ = sr.send_time;

    PendingQuery pq;
    pq.key = next_key_++;
    pq.dns_id = rec.dns_payload.size() >= 2
                    ? static_cast<uint16_t>(rec.dns_payload[0] << 8 |
                                            rec.dns_payload[1])
                    : 0;
    pq.send_index = index;
    pq.transport = rec.transport;
    pq.first_send = sr.send_time;
    pq.payload = rec.dns_payload;

    if (rec.transport == Transport::Udp) {
      UdpSock* us = udp_socket_for(rec.src.addr);
      if (us == nullptr) {
        fail_send(index);
        return;
      }
      auto sent = us->sock->send_to(config_.server, pq.payload);
      if (!sent.ok()) {
        fail_send(index);
        return;
      }
      if (*sent) {
        pq.deadline = pq.first_send + config_.query_timeout;
      } else {
        // Kernel buffer full: the query stays alive in the pending table
        // and the lifecycle timer puts it on the wire shortly — it is
        // deferred, not silently lost.
        pq.wire_sent = false;
        pq.deadline = pq.first_send + kDeferredSendDelay;
        ++report_.lifecycle.deferred_sends;
      }
      TimeNs deadline = pq.deadline;
      if (us->pending.insert(std::move(pq))) ++report_.lifecycle.duplicate_ids;
      note_in_flight(+1);
      schedule_lifecycle(deadline);
    } else {
      TcpConn* conn = tcp_conn_for(rec.src.addr);
      if (conn == nullptr) {
        fail_send(index);
        return;
      }
      conn->last_activity = sr.send_time;
      pq.deadline = pq.first_send + config_.query_timeout;
      TimeNs deadline = pq.deadline;
      if (!conn->connected) {
        conn->backlog.push_back(pq.payload);
        if (conn->pending.insert(std::move(pq)))
          ++report_.lifecycle.duplicate_ids;
        note_in_flight(+1);
      } else {
        size_t still_pending = 0;
        auto out = net::impaired_tcp_send(conn->stream, conn->fault,
                                          sr.send_time, pq.payload,
                                          &still_pending);
        if (conn->pending.insert(std::move(pq)))
          ++report_.lifecycle.duplicate_ids;
        note_in_flight(+1);
        if (out == net::TcpSendOutcome::Error ||
            out == net::TcpSendOutcome::LinkDown) {
          // Connection broke mid-send (or the link flapped away under it):
          // the pending entry survives in the table, so the reconnect path
          // resends it.
          close_tcp(rec.src.addr, /*lost=*/true);
          return;
        }
        // An Eaten message simply stays pending; the lifecycle timer
        // resends it like any other timeout.
        if (still_pending > 0) {
          // Kernel buffer full: wait for writability to flush the rest.
          (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, true});
        }
      }
      schedule_lifecycle(deadline);
    }
  }

  UdpSock* udp_socket_for(const IpAddr& source) {
    auto it = udp_socks_.find(source);
    if (it != udp_socks_.end()) return it->second.get();
    auto sock = net::UdpSocket::bind(Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 0});
    if (!sock.ok()) return nullptr;
    auto owned = std::make_unique<UdpSock>();
    owned->sock = std::make_unique<net::ImpairedUdpSocket>(
        std::move(*sock), fault_stream("udp:", source), &loop_);
    UdpSock* raw = owned.get();
    auto add = loop_.add_fd(raw->sock->fd(), net::Interest{true, false},
                            [this, raw](bool, bool) { on_udp_readable(raw); });
    if (!add.ok()) return nullptr;
    udp_socks_.emplace(source, std::move(owned));
    return raw;
  }

  TcpConn* tcp_conn_for(const IpAddr& source) {
    auto it = tcp_conns_.find(source);
    if (it != tcp_conns_.end()) return it->second.get();
    auto stream = net::TcpStream::connect(config_.server);
    if (!stream.ok()) return nullptr;
    auto owned = std::make_unique<TcpConn>(std::move(*stream));
    TcpConn* raw = owned.get();
    raw->fault = fault_stream("tcp:", source);
    (void)raw->stream.set_nodelay(true);  // §5.2.1 disables Nagle at clients
    auto add = loop_.add_fd(raw->stream.fd(), net::Interest{true, true},
                            [this, source, raw](bool readable, bool writable) {
                              on_tcp_event(source, raw, readable, writable);
                            });
    if (!add.ok()) return nullptr;
    ++report_.connections_opened;
    tcp_conns_.emplace(source, std::move(owned));
    if (sweep_timer_ == 0) arm_sweep();
    return raw;
  }

  void on_udp_readable(UdpSock* us) {
    while (true) {
      auto dg = us->sock->recv();
      if (!dg.ok()) {
        ++report_.lifecycle.socket_errors;
        return;
      }
      if (!dg->has_value()) return;
      match_response((**dg).payload, us->pending);
    }
  }

  void on_tcp_event(const IpAddr& source, TcpConn* conn, bool readable,
                    bool writable) {
    if (writable && !conn->connected) {
      conn->connected = true;
      TimeNs now = mono_now_ns();
      for (auto& msg : conn->backlog) {
        auto out = net::impaired_tcp_send(conn->stream, conn->fault, now, msg);
        if (out == net::TcpSendOutcome::Error ||
            out == net::TcpSendOutcome::LinkDown) {
          close_tcp(source, /*lost=*/true);
          return;
        }
        // Eaten messages stay pending and resend on timeout.
      }
      conn->backlog.clear();
      // Keep write interest while the flush left bytes behind — dropping it
      // here would strand a partial send forever.
      (void)loop_.modify_fd(conn->stream.fd(),
                            net::Interest{true, conn->stream.pending_bytes() > 0});
    } else if (writable) {
      auto pending = conn->stream.flush();
      if (!pending.ok()) {
        close_tcp(source, /*lost=*/true);
        return;
      }
      if (*pending == 0)
        (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, false});
    }
    if (readable) {
      bool closed = false;
      auto messages = conn->stream.read_messages(closed);
      if (messages.ok()) {
        for (const auto& msg : *messages) match_response(msg, conn->pending);
      } else {
        ++report_.lifecycle.socket_errors;
      }
      conn->last_activity = mono_now_ns();
      if (closed || !messages.ok()) close_tcp(source, /*lost=*/true);
    }
  }

  /// Tear down a TCP connection. `lost` marks an involuntary loss (peer
  /// close or socket error): unanswered queries are then resent over a
  /// fresh connection while the per-source reconnect budget lasts; beyond
  /// it (or on voluntary idle close) they become Errored.
  void close_tcp(const IpAddr& source, bool lost) {
    auto it = tcp_conns_.find(source);
    if (it == tcp_conns_.end()) return;
    loop_.remove_fd(it->second->stream.fd());
    std::vector<PendingQuery> orphans = it->second->pending.drain();
    uint32_t reconnects_used = it->second->reconnects_used;
    tcp_conns_.erase(it);
    if (orphans.empty()) return;

    TcpConn* fresh = nullptr;
    if (lost && config_.tcp_reconnect &&
        reconnects_used < config_.max_tcp_reconnects) {
      fresh = tcp_conn_for(source);
      if (fresh != nullptr) {
        fresh->reconnects_used = reconnects_used + 1;
        ++report_.lifecycle.tcp_reconnects;
      }
    }
    TimeNs now = mono_now_ns();
    for (auto& pq : orphans) {
      SendRecord& sr = report_.sends[pq.send_index];
      if (fresh != nullptr && pq.retries_used < config_.max_retries) {
        ++pq.retries_used;
        ++sr.retries;
        ++report_.lifecycle.retries;
        pq.deadline = now + retry_backoff(config_.query_timeout,
                                          pq.retries_used,
                                          config_.retry_backoff_cap);
        TimeNs deadline = pq.deadline;
        fresh->backlog.push_back(pq.payload);
        fresh->pending.insert(std::move(pq));
        schedule_lifecycle(deadline);
      } else {
        ++report_.lifecycle.expired;
        sr.outcome = QueryOutcome::Errored;
        note_in_flight(-1);
      }
    }
    maybe_finish();
  }

  void arm_sweep() {
    sweep_timer_ = loop_.add_timer_after(kSecond, [this] {
      TimeNs cutoff = mono_now_ns() - config_.tcp_idle_timeout;
      for (auto it = tcp_conns_.begin(); it != tcp_conns_.end();) {
        auto next = std::next(it);
        if (it->second->last_activity < cutoff)
          close_tcp(it->first, /*lost=*/false);
        it = next;
      }
      sweep_timer_ = 0;
      if (!tcp_conns_.empty()) arm_sweep();
      maybe_finish();
    });
  }

  // ---- lifecycle timer: timeouts, retransmits, bounded expiry ----

  /// Arm (or pull earlier) the single timer that fires at the earliest
  /// pending deadline across every table this querier owns.
  void schedule_lifecycle(TimeNs deadline) {
    if (lifecycle_timer_ != 0) {
      if (deadline >= lifecycle_deadline_) return;
      loop_.cancel_timer(lifecycle_timer_);
    }
    lifecycle_deadline_ = deadline;
    lifecycle_timer_ =
        loop_.add_timer_at(deadline, [this] { on_lifecycle_due(); });
  }

  void on_lifecycle_due() {
    lifecycle_timer_ = 0;
    TimeNs now = mono_now_ns();
    for (auto& [source, us] : udp_socks_) {
      for (auto& pq : us->pending.take_due(now))
        handle_udp_due(*us, std::move(pq), now);
    }
    // Collect due TCP entries first: handling one may close/reopen
    // connections, which mutates tcp_conns_ mid-iteration otherwise.
    std::vector<std::pair<IpAddr, PendingQuery>> tcp_due;
    for (auto& [source, conn] : tcp_conns_) {
      for (auto& pq : conn->pending.take_due(now))
        tcp_due.emplace_back(source, std::move(pq));
    }
    for (auto& [source, pq] : tcp_due) handle_tcp_due(source, std::move(pq), now);
    rearm_lifecycle();
    maybe_finish();
  }

  void rearm_lifecycle() {
    std::optional<TimeNs> next;
    auto consider = [&next](std::optional<TimeNs> d) {
      if (d.has_value() && (!next.has_value() || *d < *next)) next = d;
    };
    for (auto& [source, us] : udp_socks_) consider(us->pending.next_deadline());
    for (auto& [source, conn] : tcp_conns_) consider(conn->pending.next_deadline());
    if (next.has_value()) schedule_lifecycle(*next);
  }

  void handle_udp_due(UdpSock& us, PendingQuery pq, TimeNs now) {
    SendRecord& sr = report_.sends[pq.send_index];
    if (pq.wire_sent) ++report_.lifecycle.timeouts;
    if (pq.retries_used >= config_.max_retries) {
      ++report_.lifecycle.expired;
      sr.outcome = pq.wire_sent ? QueryOutcome::TimedOut : QueryOutcome::Errored;
      note_in_flight(-1);
      return;
    }
    ++pq.retries_used;
    bool was_on_wire = pq.wire_sent;
    auto sent = us.sock->send_to(config_.server, pq.payload);
    if (!sent.ok()) {
      ++report_.send_errors;
      ++report_.lifecycle.expired;
      sr.outcome = QueryOutcome::Errored;
      note_in_flight(-1);
      return;
    }
    if (was_on_wire) {
      ++report_.lifecycle.retries;
      ++sr.retries;
    } else if (*sent) {
      // First time this query actually reached the wire; latency still
      // counts from the original send attempt.
      ++report_.lifecycle.deferred_sends;
    }
    pq.wire_sent = was_on_wire || *sent;
    pq.deadline = now + (pq.wire_sent
                             ? retry_backoff(config_.query_timeout,
                                             pq.retries_used,
                                             config_.retry_backoff_cap)
                             : kDeferredSendDelay);
    us.pending.insert(std::move(pq));  // reinsert: not a fresh collision
  }

  void handle_tcp_due(const IpAddr& source, PendingQuery pq, TimeNs now) {
    SendRecord& sr = report_.sends[pq.send_index];
    ++report_.lifecycle.timeouts;
    if (pq.retries_used >= config_.max_retries) {
      ++report_.lifecycle.expired;
      sr.outcome = QueryOutcome::TimedOut;
      note_in_flight(-1);
      return;
    }
    ++pq.retries_used;
    TcpConn* conn = tcp_conn_for(source);  // reuse, or reopen if it vanished
    if (conn == nullptr) {
      ++report_.send_errors;
      ++report_.lifecycle.expired;
      sr.outcome = QueryOutcome::Errored;
      note_in_flight(-1);
      return;
    }
    ++report_.lifecycle.retries;
    ++sr.retries;
    pq.deadline = now + retry_backoff(config_.query_timeout, pq.retries_used,
                                      config_.retry_backoff_cap);
    if (!conn->connected) {
      conn->backlog.push_back(pq.payload);
      conn->pending.insert(std::move(pq));
      return;
    }
    size_t still_pending = 0;
    auto out = net::impaired_tcp_send(conn->stream, conn->fault, now, pq.payload,
                                      &still_pending);
    if (out == net::TcpSendOutcome::Error ||
        out == net::TcpSendOutcome::LinkDown) {
      conn->pending.insert(std::move(pq));
      close_tcp(source, /*lost=*/true);  // resends via the reconnect path
      return;
    }
    if (still_pending > 0)
      (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, true});
    conn->pending.insert(std::move(pq));
  }

  void match_response(const std::vector<uint8_t>& payload, PendingTable& pending) {
    if (payload.size() < 2) return;
    uint16_t id = static_cast<uint16_t>(payload[0] << 8 | payload[1]);
    auto pq = pending.match(id);
    if (!pq.has_value()) {
      // Late (already expired) or unsolicited — the id names no live query.
      ++report_.lifecycle.unmatched_responses;
      return;
    }
    SendRecord& sr = report_.sends[pq->send_index];
    sr.latency = mono_now_ns() - sr.send_time;
    sr.outcome = QueryOutcome::Answered;
    ++report_.responses_received;
    report_.latency_hist.add(sr.latency);
    if (sr.retries > 0) ++report_.lifecycle.answered_after_retry;
    note_in_flight(-1);
    maybe_finish();
  }

  void maybe_finish() {
    if (!input_done_ || pending_timers_ > 0 || stopping_) return;
    // Every query reaches a terminal outcome (answer, expiry, error), so
    // in-flight hitting zero is the natural end; drain_grace only caps the
    // wait when the retry/expiry schedule outlives the caller's patience.
    if (in_flight_ == 0) {
      stopping_ = true;
      loop_.stop();
      return;
    }
    if (drain_timer_ == 0) {
      drain_timer_ = loop_.add_timer_after(config_.drain_grace, [this] {
        stopping_ = true;
        loop_.stop();
      });
    }
  }

  void finalize_report() {
    // Queries still pending at shutdown (drain_grace fired before their
    // expiry) are abandoned: counted, never silently lost.
    auto abandon = [this](PendingQuery&& pq) {
      SendRecord& sr = report_.sends[pq.send_index];
      if (sr.outcome != QueryOutcome::Pending) return;
      sr.outcome = pq.wire_sent ? QueryOutcome::TimedOut : QueryOutcome::Errored;
      ++report_.lifecycle.expired;
    };
    for (auto& [source, us] : udp_socks_)
      for (auto& pq : us->pending.drain()) abandon(std::move(pq));
    for (auto& [source, conn] : tcp_conns_)
      for (auto& pq : conn->pending.drain()) abandon(std::move(pq));
    for (const auto& sr : report_.sends) {
      report_.replay_end = std::max(report_.replay_end, sr.send_time);
    }
    for (const auto& [name, stream] : fault_streams_)
      report_.impairments.merge(stream->counters());
  }

  uint32_t id_;
  const EngineConfig& config_;
  const ReplayClock& clock_;
  BoundedQueue<TraceRecord> queue_;
  net::Fd wake_fd_;
  net::EventLoop loop_;
  std::thread thread_;

  std::unordered_map<IpAddr, std::unique_ptr<UdpSock>, IpAddrHash> udp_socks_;
  std::unordered_map<IpAddr, std::unique_ptr<TcpConn>, IpAddrHash> tcp_conns_;
  // Named per-source impairment streams ("udp:<src>" / "tcp:<src>"),
  // created lazily; they outlive reconnects so a source's draw sequence is
  // continuous for the whole replay.
  std::unordered_map<std::string, std::unique_ptr<fault::FaultStream>>
      fault_streams_;

  EngineReport report_;
  uint64_t next_key_ = 1;
  int64_t in_flight_ = 0;
  size_t pending_timers_ = 0;
  bool input_done_ = false;
  bool stopping_ = false;
  net::EventLoop::TimerId drain_timer_ = 0;
  net::EventLoop::TimerId sweep_timer_ = 0;
  net::EventLoop::TimerId lifecycle_timer_ = 0;
  TimeNs lifecycle_deadline_ = 0;
  TimeNs last_send_ = 0;
};

// ---------------------------------------------------------------------------
// Distributor: fans records out to its queriers, same-source sticky, and
// folds their reports (counters, histograms, send records) into one on
// collect so the controller merges per-distributor, not per-querier.
// ---------------------------------------------------------------------------
class QueryEngine::Distributor {
 public:
  Distributor(uint32_t first_querier_id, size_t querier_count,
              const EngineConfig& config, const ReplayClock& clock)
      : queue_(config.queue_capacity) {
    for (size_t i = 0; i < querier_count; ++i) {
      queriers_.push_back(std::make_unique<Querier>(
          first_querier_id + static_cast<uint32_t>(i), config, clock));
    }
    thread_ = std::thread([this] { run(); });
  }

  ~Distributor() {
    if (thread_.joinable()) thread_.join();
  }

  void submit(TraceRecord rec) { queue_.push(std::move(rec)); }
  void finish() { queue_.close(); }

  EngineReport collect() {
    if (thread_.joinable()) thread_.join();
    EngineReport merged;
    for (auto& q : queriers_) merged.merge_from(q->take_report());
    return merged;
  }

 private:
  void run() {
    while (true) {
      auto rec = queue_.pop();
      if (!rec.has_value()) break;
      // Sticky assignment: the same original source always reaches the same
      // querier, so that querier's per-source socket emulates the source.
      auto it = source_to_querier_.find(rec->src.addr);
      size_t idx;
      if (it != source_to_querier_.end()) {
        idx = it->second;
      } else {
        idx = next_++ % queriers_.size();
        source_to_querier_.emplace(rec->src.addr, idx);
      }
      queriers_[idx]->submit(std::move(*rec));
    }
    for (auto& q : queriers_) q->finish();
  }

  BoundedQueue<TraceRecord> queue_;
  std::vector<std::unique_ptr<Querier>> queriers_;
  std::unordered_map<IpAddr, size_t, IpAddrHash> source_to_querier_;
  size_t next_ = 0;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// QueryEngine: the controller (Reader + Postman).
// ---------------------------------------------------------------------------
QueryEngine::QueryEngine(EngineConfig config) : config_(config) {}
QueryEngine::~QueryEngine() = default;

Result<EngineReport> QueryEngine::replay(const std::vector<TraceRecord>& trace,
                                         const ReplayClock* shared_clock) {
  if (trace.empty()) return Err("empty trace");
  if (config_.distributors == 0 || config_.queriers_per_distributor == 0)
    return Err("need at least one distributor and querier");
  if (shared_clock != nullptr && !shared_clock->started())
    return Err("shared clock not started");

  // Time synchronization broadcast (§2.6): latch t̄₁ from the first query
  // and t₁ slightly in the future so worker startup cost doesn't make the
  // first queries late. A shared clock (multi-controller replay) overrides.
  ReplayClock own_clock;
  own_clock.start(trace.front().timestamp, mono_now_ns() + kStartupLead);
  const ReplayClock& clock = shared_clock != nullptr ? *shared_clock : own_clock;

  std::vector<std::unique_ptr<Distributor>> distributors;
  for (size_t i = 0; i < config_.distributors; ++i) {
    distributors.push_back(std::make_unique<Distributor>(
        static_cast<uint32_t>(i * config_.queriers_per_distributor),
        config_.queriers_per_distributor, config_, clock));
  }

  // The Postman: dispatch records, same-source sticky across distributors,
  // mutating live when configured.
  uint64_t mutator_dropped = 0;
  for (const auto& rec : trace) {
    if (rec.direction != trace::Direction::Query) continue;
    TraceRecord record = rec;
    if (config_.live_mutator != nullptr) {
      auto verdict = config_.live_mutator->apply(record);
      if (!verdict.ok() || *verdict == mutate::Verdict::Drop) {
        ++mutator_dropped;
        continue;
      }
    }
    auto it = source_to_distributor_.find(record.src.addr);
    size_t idx;
    if (it != source_to_distributor_.end()) {
      idx = it->second;
    } else {
      idx = next_distributor_++ % distributors.size();
      source_to_distributor_.emplace(record.src.addr, idx);
    }
    distributors[idx]->submit(std::move(record));
  }
  for (auto& d : distributors) d->finish();

  EngineReport merged;
  merged.mutator_dropped = mutator_dropped;
  merged.replay_start = clock.real_origin();
  for (auto& d : distributors) merged.merge_from(d->collect());
  source_to_distributor_.clear();
  next_distributor_ = 0;
  return merged;
}

}  // namespace ldp::replay
