#include "replay/engine.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cstring>

#include "util/log.hpp"

namespace ldp::replay {

using trace::TraceRecord;

namespace {
constexpr TimeNs kStartupLead = 100 * kMilli;  // let worker threads spin up
}

// ---------------------------------------------------------------------------
// Querier: one thread, one event loop, sockets pinned per query source.
// ---------------------------------------------------------------------------
class QueryEngine::Querier {
 public:
  Querier(uint32_t id, const EngineConfig& config, const ReplayClock& clock)
      : id_(id), config_(config), clock_(clock), queue_(config.queue_capacity) {
    wake_fd_ = net::Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    thread_ = std::thread([this] { run(); });
  }

  ~Querier() {
    if (thread_.joinable()) thread_.join();
  }

  /// Called from the distributor thread.
  void submit(TraceRecord rec) {
    queue_.push(std::move(rec));
    wake();
  }
  void finish() {
    queue_.close();
    wake();
  }

  EngineReport take_report() {
    if (thread_.joinable()) thread_.join();
    return std::move(report_);
  }

 private:
  struct TcpConn {
    net::TcpStream stream;
    bool connected = false;
    TimeNs last_activity = 0;
    std::vector<std::vector<uint8_t>> backlog;  // queued until connected
    std::unordered_map<uint16_t, size_t> pending;  // dns id -> send index

    explicit TcpConn(net::TcpStream s) : stream(std::move(s)) {}
  };

  void wake() {
    uint64_t one = 1;
    ssize_t r = ::write(wake_fd_.get(), &one, sizeof(one));
    (void)r;
  }

  void run() {
    auto add = loop_.add_fd(wake_fd_.get(), net::Interest{true, false},
                            [this](bool, bool) { on_wake(); });
    if (!add.ok()) return;
    loop_.run();
    finalize_report();
  }

  void on_wake() {
    uint64_t buf;
    while (::read(wake_fd_.get(), &buf, sizeof(buf)) > 0) {
    }
    // Drain the input queue without blocking: try_pop via size probe.
    while (true) {
      if (queue_.size() == 0) break;
      auto rec = queue_.pop();
      if (!rec.has_value()) break;
      handle_record(std::move(*rec));
    }
    if (queue_.closed_and_empty()) {
      input_done_ = true;
      maybe_finish();
    }
  }

  void handle_record(TraceRecord rec) {
    if (config_.timed) {
      TimeNs deadline = clock_.deadline_for(rec.timestamp);
      if (deadline > mono_now_ns()) {
        ++pending_timers_;
        auto shared = std::make_shared<TraceRecord>(std::move(rec));
        loop_.add_timer_at(deadline, [this, shared] {
          --pending_timers_;
          send_query(*shared);
          maybe_finish();
        });
        return;
      }
    }
    send_query(rec);  // behind schedule or fast mode: send immediately
  }

  void send_query(const TraceRecord& rec) {
    size_t index = report_.sends.size();
    SendRecord sr;
    sr.trace_time = rec.timestamp;
    sr.send_time = mono_now_ns();
    sr.querier = id_;
    report_.sends.push_back(sr);

    uint16_t dns_id = rec.dns_payload.size() >= 2
                          ? static_cast<uint16_t>(rec.dns_payload[0] << 8 |
                                                  rec.dns_payload[1])
                          : 0;

    if (rec.transport == Transport::Udp) {
      net::UdpSocket* sock = udp_socket_for(rec.src.addr);
      if (sock == nullptr) {
        ++report_.send_errors;
        return;
      }
      auto sent = sock->send_to(config_.server, rec.dns_payload);
      if (!sent.ok() || !*sent) {
        ++report_.send_errors;
        return;
      }
      udp_pending_[sock->fd()][dns_id] = index;
    } else {
      TcpConn* conn = tcp_conn_for(rec.src.addr);
      if (conn == nullptr) {
        ++report_.send_errors;
        return;
      }
      conn->last_activity = mono_now_ns();
      conn->pending[dns_id] = index;
      if (!conn->connected) {
        conn->backlog.push_back(rec.dns_payload);
      } else {
        auto sent = conn->stream.send_message(rec.dns_payload);
        if (!sent.ok()) {
          ++report_.send_errors;
        } else if (*sent > 0) {
          // Kernel buffer full: wait for writability to flush the rest.
          (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, true});
        }
      }
    }
    ++report_.queries_sent;
    last_send_ = mono_now_ns();
  }

  net::UdpSocket* udp_socket_for(const IpAddr& source) {
    auto it = udp_sockets_.find(source);
    if (it != udp_sockets_.end()) return it->second.get();
    auto sock = net::UdpSocket::bind(Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 0});
    if (!sock.ok()) return nullptr;
    auto owned = std::make_unique<net::UdpSocket>(std::move(*sock));
    net::UdpSocket* raw = owned.get();
    auto add = loop_.add_fd(raw->fd(), net::Interest{true, false},
                            [this, raw](bool, bool) { on_udp_readable(raw); });
    if (!add.ok()) return nullptr;
    udp_sockets_.emplace(source, std::move(owned));
    return raw;
  }

  TcpConn* tcp_conn_for(const IpAddr& source) {
    auto it = tcp_conns_.find(source);
    if (it != tcp_conns_.end()) return it->second.get();
    auto stream = net::TcpStream::connect(config_.server);
    if (!stream.ok()) return nullptr;
    auto owned = std::make_unique<TcpConn>(std::move(*stream));
    TcpConn* raw = owned.get();
    (void)raw->stream.set_nodelay(true);  // §5.2.1 disables Nagle at clients
    auto add = loop_.add_fd(raw->stream.fd(), net::Interest{true, true},
                            [this, source, raw](bool readable, bool writable) {
                              on_tcp_event(source, raw, readable, writable);
                            });
    if (!add.ok()) return nullptr;
    ++report_.connections_opened;
    tcp_conns_.emplace(source, std::move(owned));
    if (sweep_timer_ == 0) arm_sweep();
    return raw;
  }

  void on_udp_readable(net::UdpSocket* sock) {
    while (true) {
      auto dg = sock->recv();
      if (!dg.ok() || !dg->has_value()) return;
      match_response((**dg).payload, udp_pending_[sock->fd()]);
    }
  }

  void on_tcp_event(const IpAddr& source, TcpConn* conn, bool readable,
                    bool writable) {
    if (writable && !conn->connected) {
      conn->connected = true;
      for (auto& msg : conn->backlog) {
        auto sent = conn->stream.send_message(msg);
        if (!sent.ok()) ++report_.send_errors;
      }
      conn->backlog.clear();
      (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, false});
    } else if (writable) {
      auto pending = conn->stream.flush();
      if (pending.ok() && *pending == 0)
        (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, false});
    }
    if (readable) {
      bool closed = false;
      auto messages = conn->stream.read_messages(closed);
      if (messages.ok()) {
        for (const auto& msg : *messages) match_response(msg, conn->pending);
      }
      conn->last_activity = mono_now_ns();
      if (closed || !messages.ok()) close_tcp(source);
    }
  }

  void close_tcp(const IpAddr& source) {
    auto it = tcp_conns_.find(source);
    if (it == tcp_conns_.end()) return;
    loop_.remove_fd(it->second->stream.fd());
    tcp_conns_.erase(it);
  }

  void arm_sweep() {
    sweep_timer_ = loop_.add_timer_after(kSecond, [this] {
      TimeNs cutoff = mono_now_ns() - config_.tcp_idle_timeout;
      for (auto it = tcp_conns_.begin(); it != tcp_conns_.end();) {
        auto next = std::next(it);
        if (it->second->last_activity < cutoff) close_tcp(it->first);
        it = next;
      }
      sweep_timer_ = 0;
      if (!tcp_conns_.empty()) arm_sweep();
      maybe_finish();
    });
  }

  void match_response(const std::vector<uint8_t>& payload,
                      std::unordered_map<uint16_t, size_t>& pending) {
    if (payload.size() < 2) return;
    uint16_t id = static_cast<uint16_t>(payload[0] << 8 | payload[1]);
    auto it = pending.find(id);
    if (it == pending.end()) return;
    SendRecord& sr = report_.sends[it->second];
    if (sr.latency < 0) {
      sr.latency = mono_now_ns() - sr.send_time;
      ++report_.responses_received;
    }
    pending.erase(it);
    maybe_finish();
  }

  void maybe_finish() {
    if (!input_done_ || pending_timers_ > 0 || stopping_) return;
    bool all_answered = report_.responses_received >= report_.queries_sent;
    if (all_answered) {
      stopping_ = true;
      loop_.stop();
      return;
    }
    if (drain_timer_ == 0) {
      drain_timer_ = loop_.add_timer_after(config_.drain_grace, [this] {
        stopping_ = true;
        loop_.stop();
      });
    }
  }

  void finalize_report() {
    for (const auto& sr : report_.sends) {
      report_.replay_end = std::max(report_.replay_end, sr.send_time);
    }
  }

  uint32_t id_;
  const EngineConfig& config_;
  const ReplayClock& clock_;
  BoundedQueue<TraceRecord> queue_;
  net::Fd wake_fd_;
  net::EventLoop loop_;
  std::thread thread_;

  std::unordered_map<IpAddr, std::unique_ptr<net::UdpSocket>, IpAddrHash> udp_sockets_;
  std::unordered_map<int, std::unordered_map<uint16_t, size_t>> udp_pending_;
  std::unordered_map<IpAddr, std::unique_ptr<TcpConn>, IpAddrHash> tcp_conns_;

  EngineReport report_;
  size_t pending_timers_ = 0;
  bool input_done_ = false;
  bool stopping_ = false;
  net::EventLoop::TimerId drain_timer_ = 0;
  net::EventLoop::TimerId sweep_timer_ = 0;
  TimeNs last_send_ = 0;
};

// ---------------------------------------------------------------------------
// Distributor: fans records out to its queriers, same-source sticky.
// ---------------------------------------------------------------------------
class QueryEngine::Distributor {
 public:
  Distributor(uint32_t first_querier_id, size_t querier_count,
              const EngineConfig& config, const ReplayClock& clock)
      : queue_(config.queue_capacity) {
    for (size_t i = 0; i < querier_count; ++i) {
      queriers_.push_back(std::make_unique<Querier>(
          first_querier_id + static_cast<uint32_t>(i), config, clock));
    }
    thread_ = std::thread([this] { run(); });
  }

  ~Distributor() {
    if (thread_.joinable()) thread_.join();
  }

  void submit(TraceRecord rec) { queue_.push(std::move(rec)); }
  void finish() { queue_.close(); }

  std::vector<EngineReport> collect() {
    if (thread_.joinable()) thread_.join();
    std::vector<EngineReport> reports;
    for (auto& q : queriers_) reports.push_back(q->take_report());
    return reports;
  }

 private:
  void run() {
    while (true) {
      auto rec = queue_.pop();
      if (!rec.has_value()) break;
      // Sticky assignment: the same original source always reaches the same
      // querier, so that querier's per-source socket emulates the source.
      auto it = source_to_querier_.find(rec->src.addr);
      size_t idx;
      if (it != source_to_querier_.end()) {
        idx = it->second;
      } else {
        idx = next_++ % queriers_.size();
        source_to_querier_.emplace(rec->src.addr, idx);
      }
      queriers_[idx]->submit(std::move(*rec));
    }
    for (auto& q : queriers_) q->finish();
  }

  BoundedQueue<TraceRecord> queue_;
  std::vector<std::unique_ptr<Querier>> queriers_;
  std::unordered_map<IpAddr, size_t, IpAddrHash> source_to_querier_;
  size_t next_ = 0;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// QueryEngine: the controller (Reader + Postman).
// ---------------------------------------------------------------------------
QueryEngine::QueryEngine(EngineConfig config) : config_(config) {}
QueryEngine::~QueryEngine() = default;

Result<EngineReport> QueryEngine::replay(const std::vector<TraceRecord>& trace,
                                         const ReplayClock* shared_clock) {
  if (trace.empty()) return Err("empty trace");
  if (config_.distributors == 0 || config_.queriers_per_distributor == 0)
    return Err("need at least one distributor and querier");
  if (shared_clock != nullptr && !shared_clock->started())
    return Err("shared clock not started");

  // Time synchronization broadcast (§2.6): latch t̄₁ from the first query
  // and t₁ slightly in the future so worker startup cost doesn't make the
  // first queries late. A shared clock (multi-controller replay) overrides.
  ReplayClock own_clock;
  own_clock.start(trace.front().timestamp, mono_now_ns() + kStartupLead);
  const ReplayClock& clock = shared_clock != nullptr ? *shared_clock : own_clock;

  std::vector<std::unique_ptr<Distributor>> distributors;
  for (size_t i = 0; i < config_.distributors; ++i) {
    distributors.push_back(std::make_unique<Distributor>(
        static_cast<uint32_t>(i * config_.queriers_per_distributor),
        config_.queriers_per_distributor, config_, clock));
  }

  // The Postman: dispatch records, same-source sticky across distributors,
  // mutating live when configured.
  uint64_t mutator_dropped = 0;
  for (const auto& rec : trace) {
    if (rec.direction != trace::Direction::Query) continue;
    TraceRecord record = rec;
    if (config_.live_mutator != nullptr) {
      auto verdict = config_.live_mutator->apply(record);
      if (!verdict.ok() || *verdict == mutate::Verdict::Drop) {
        ++mutator_dropped;
        continue;
      }
    }
    auto it = source_to_distributor_.find(record.src.addr);
    size_t idx;
    if (it != source_to_distributor_.end()) {
      idx = it->second;
    } else {
      idx = next_distributor_++ % distributors.size();
      source_to_distributor_.emplace(record.src.addr, idx);
    }
    distributors[idx]->submit(std::move(record));
  }
  for (auto& d : distributors) d->finish();

  EngineReport merged;
  merged.mutator_dropped = mutator_dropped;
  merged.replay_start = clock.real_origin();
  for (auto& d : distributors) {
    for (auto& rep : d->collect()) {
      merged.queries_sent += rep.queries_sent;
      merged.responses_received += rep.responses_received;
      merged.send_errors += rep.send_errors;
      merged.connections_opened += rep.connections_opened;
      merged.replay_end = std::max(merged.replay_end, rep.replay_end);
      // Fast mode sends before the startup-lead origin; lower the start to
      // the first real send so duration/rate stay meaningful (timed sends
      // are never earlier than the origin, so this is a no-op there).
      for (const auto& sr : rep.sends)
        merged.replay_start = std::min(merged.replay_start, sr.send_time);
      merged.sends.insert(merged.sends.end(),
                          std::make_move_iterator(rep.sends.begin()),
                          std::make_move_iterator(rep.sends.end()));
    }
  }
  source_to_distributor_.clear();
  next_distributor_ = 0;
  return merged;
}

}  // namespace ldp::replay
