#include "replay/engine.hpp"

#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>

#include "replay/checkpoint.hpp"
#include "replay/supervisor.hpp"
#include "util/log.hpp"

namespace ldp::replay {

using trace::TraceRecord;

namespace {
constexpr TimeNs kStartupLead = 100 * kMilli;  // let worker threads spin up
// Resend delay for queries that never reached the wire (kernel buffer
// full): short, so the backlog clears as soon as the kernel drains.
constexpr TimeNs kDeferredSendDelay = 10 * kMilli;
// How long a blocking push waits between heartbeats, so a producer stuck
// behind a stalled consumer still looks alive to the supervisor (and
// re-checks for queue closure, which is how recovery unblocks it).
constexpr TimeNs kPushBeatGrace = 100 * kMilli;
}  // namespace

void EngineReport::merge_from(EngineReport&& other) {
  queries_sent += other.queries_sent;
  responses_received += other.responses_received;
  send_errors += other.send_errors;
  connections_opened += other.connections_opened;
  mutator_dropped += other.mutator_dropped;
  max_in_flight = std::max(max_in_flight, other.max_in_flight);
  querier_failures += other.querier_failures;
  sources_reassigned += other.sources_reassigned;
  shed_queries += other.shed_queries;
  queue_hwm = std::max(queue_hwm, other.queue_hwm);
  clamp_stall_ns += other.clamp_stall_ns;
  worker_crashes += other.worker_crashes;
  workers_respawned += other.workers_respawned;
  max_drift_ns = std::max(max_drift_ns, other.max_drift_ns);
  lifecycle.merge(other.lifecycle);
  impairments.merge(other.impairments);
  latency_hist.merge(other.latency_hist);
  replay_end = std::max(replay_end, other.replay_end);
  // A resumed run merges a checkpoint's counters whose timing fields are
  // meaningless in this process — only widen from reports that have one.
  if (other.replay_start > 0 &&
      (replay_start == 0 || other.replay_start < replay_start))
    replay_start = other.replay_start;
  // Fast mode sends before the startup-lead origin; lower the start to the
  // first real send so duration/rate stay meaningful (timed sends are never
  // earlier than the origin, so this is a no-op there). send_time == 0 is
  // the not-yet-adopted sentinel on restored records — skip those.
  for (const auto& sr : other.sends) {
    if (sr.send_time > 0 && (replay_start == 0 || sr.send_time < replay_start))
      replay_start = sr.send_time;
  }
  sends.insert(sends.end(), std::make_move_iterator(other.sends.begin()),
               std::make_move_iterator(other.sends.end()));
}

namespace {

/// What one querier publishes for the checkpoint gatherer: a per-querier
/// consistent cut of its counters, in-flight queries, per-source sent
/// counts and fault-stream draw positions. Published by the querier thread
/// under a mutex; read by the supervisor thread.
struct QuerierSnapshot {
  bool valid = false;
  EngineReport partial;  ///< counters + histogram only, sends stay empty
  std::vector<CheckpointPending> pending;
  std::map<std::string, fault::FaultStream::Position> streams;
  std::map<std::string, uint64_t> sent;
};

}  // namespace

// ---------------------------------------------------------------------------
// Querier: one thread, one event loop, sockets pinned per query source.
// Every in-flight query lives in exactly one PendingTable (per UDP socket /
// per TCP connection) from send until a terminal outcome: answered,
// timed-out after the retry budget, or errored. A single lifecycle timer,
// armed at the earliest deadline across tables, drives retransmits and
// expiry, so pending state is bounded by the retry window even when the
// server never answers.
//
// Supervision: the thread beats a heartbeat from an event-loop timer. A
// querier_stall fault injection parks the thread (cooperatively wedged: no
// beats, no processing); the supervisor then reaps it — harvesting its
// queue, deferred records and pending tables while the thread is provably
// quiescent — and releases it. In-flight queries salvaged this way carry a
// pointer to their original send record (extern_rec), so the sibling that
// adopts them resolves outcomes in the failed querier's report; the
// engine joins every querier before merging any report, keeping those
// cross-report writes race-free.
// ---------------------------------------------------------------------------
class QueryEngine::Querier {
 public:
  Querier(uint32_t id, const EngineConfig& config, const ReplayClock& clock)
      : id_(id), config_(config), clock_(clock), queue_(config.queue_capacity) {
    wake_fd_ = net::Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    thread_ = std::thread([this] { run(); });
  }

  ~Querier() {
    if (thread_.joinable()) thread_.join();
  }

  uint32_t id() const { return id_; }
  BoundedQueue<TraceRecord>& queue() { return queue_; }
  Heartbeat& heartbeat() { return heartbeat_; }
  size_t queue_high_water() const { return queue_.high_water(); }

  void wake() {
    uint64_t one = 1;
    ssize_t r = ::write(wake_fd_.get(), &one, sizeof(one));
    (void)r;
  }

  void finish() {
    queue_.close();
    wake();
  }

  /// Hand over in-flight queries (a failed sibling's, or a checkpoint's).
  /// Every entry must carry extern_rec. Thread-safe; returns false — with
  /// `orphans` intact — once the querier stopped accepting (shutting down),
  /// so the caller can grave-yard them with accounting instead of losing
  /// them in a never-drained inbox.
  bool adopt(std::vector<PendingQuery>& orphans) {
    {
      std::lock_guard lock(adopt_mu_);
      if (adopt_closed_) return false;
      for (auto& pq : orphans) adopt_inbox_.push_back(std::move(pq));
    }
    orphans.clear();
    wake();
    return true;
  }

  /// Hand over trace records a failed sibling never sent. This bypasses the
  /// input queue (already closed once routing finished) and rides the adopt
  /// inbox instead, which stays open for as long as the querier is still
  /// draining — so mid-drain recovery re-dispatches on the original
  /// schedule rather than shedding. Same contract as adopt(): false leaves
  /// `records` intact for the caller to account.
  bool adopt_records(std::vector<TraceRecord>& records) {
    {
      std::lock_guard lock(adopt_mu_);
      if (adopt_closed_) return false;
      for (auto& rec : records) record_inbox_.push_back(std::move(rec));
    }
    records.clear();
    wake();
    return true;
  }

  /// Everything a reaped querier leaves behind: queries on the wire
  /// (resendable, with extern record pointers) and trace records it never
  /// got to send (re-dispatchable through the normal path).
  struct Salvage {
    std::vector<PendingQuery> pending;
    std::vector<TraceRecord> unsent;
  };

  /// Supervisor-thread half of the recovery handshake. Blocks until the
  /// thread is provably quiescent (parked after a stall, or finished);
  /// returns false if it finished normally (false alarm — nothing to
  /// recover). On true, the querier's state has been harvested into `out`
  /// and the caller must call release() to let the thread exit.
  bool reap(Salvage& out) {
    {
      std::unique_lock lock(life_mu_);
      life_cv_.wait(lock, [this] { return parked_ || finished_; });
      if (!parked_) return false;
    }
    // The thread is parked: it reads released_ under life_mu_ and touches
    // nothing else until release(). Safe to harvest from this thread.
    queue_.close();
    while (auto rec = queue_.pop_for(0)) out.unsent.push_back(std::move(*rec));
    {
      std::lock_guard lock(adopt_mu_);
      adopt_closed_ = true;
      for (auto& pq : adopt_inbox_) out.pending.push_back(std::move(pq));
      adopt_inbox_.clear();
      for (auto& rec : record_inbox_) out.unsent.push_back(std::move(rec));
      record_inbox_.clear();
    }
    for (auto& [source, us] : udp_socks_) {
      for (auto& pq : us->pending.drain()) out.pending.push_back(std::move(pq));
      // Sends staged for a flush that never came are in flight from the
      // trace's point of view: salvage them like any pending entry.
      for (auto& st : us->stage) out.pending.push_back(std::move(st.pq));
      us->stage.clear();
    }
    staged_count_ = 0;
    for (auto& [source, conn] : tcp_conns_)
      for (auto& pq : conn->pending.drain()) out.pending.push_back(std::move(pq));
    for (auto& [token, rec] : deferred_records_)
      out.unsent.push_back(std::move(*rec));
    deferred_records_.clear();
    // Point salvaged queries at their records in this report so the
    // adopter resolves them in place. sends never grows again (the thread
    // is parked), so the pointers stay stable until after all joins.
    for (auto& pq : out.pending)
      if (pq.extern_rec == nullptr) pq.extern_rec = &report_.sends[pq.send_index];
    return true;
  }

  void release() {
    std::lock_guard lock(life_mu_);
    released_ = true;
    life_cv_.notify_all();
  }

  QuerierSnapshot snapshot() const {
    std::lock_guard lock(snap_mu_);
    return snap_;
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  EngineReport take_report() {
    join();
    return std::move(report_);
  }

 private:
  // Staged-send modes (batched_io): each replicates its scalar call site's
  // post-send bookkeeping exactly, so a fixed-seed batched run reports the
  // same counters as a scalar one.
  static constexpr uint8_t kStageFresh = 0;  ///< send_query first attempt
  static constexpr uint8_t kStageAdopt = 1;  ///< adopt_pending resend
  static constexpr uint8_t kStageRetry = 2;  ///< lifecycle retransmit

  /// One UDP send waiting for the per-round sendmmsg flush. The pending
  /// query lives here (not in the table) until the flush resolves whether
  /// it reached the wire; staged_count_ keeps maybe_finish honest.
  struct StagedSend {
    PendingQuery pq;
    uint8_t mode;
    bool was_on_wire;  ///< kStageRetry only: wire_sent before this attempt
  };

  struct UdpSock {
    std::unique_ptr<net::ImpairedUdpSocket> sock;
    PendingTable pending;
    // Batched-send staging: queries accumulated during one poll round,
    // flushed FIFO with one sendmmsg by the loop's flush hook.
    std::vector<StagedSend> stage;
    std::vector<net::UdpSocket::OutDatagram> stage_dgs;  // flush scratch
    std::vector<uint8_t> wire_flags;                     // flush scratch
  };

  struct TcpConn {
    net::TcpStream stream;
    bool connected = false;
    TimeNs last_activity = 0;
    uint32_t reconnects_used = 0;  // reconnect budget consumed for this source
    std::vector<std::vector<uint8_t>> backlog;  // queued until connected
    PendingTable pending;
    // Per-source impairment stream (owned by the querier's stream map, so
    // the draw sequence survives reconnects).
    fault::FaultStream* fault = nullptr;
    // Slowloris injection (fault knob slow_client): a slow connection never
    // sends a whole frame — framed queries join drip_out and trickle one
    // byte per slow_drip interval, holding the server's reassembly buffer
    // open exactly like a hostile client would.
    bool slow = false;
    std::vector<uint8_t> drip_out;
    size_t drip_pos = 0;
    bool drip_armed = false;

    explicit TcpConn(net::TcpStream s) : stream(std::move(s)) {}
  };

  /// Resolve the send record a pending query belongs to: its own report
  /// entry, or — for adopted queries — the record in the failed querier's
  /// report / the resumed checkpoint's stable storage.
  SendRecord& record_of(PendingQuery& pq) {
    return pq.extern_rec != nullptr ? *pq.extern_rec
                                    : report_.sends[pq.send_index];
  }
  const SendRecord& record_of(const PendingQuery& pq) const {
    return pq.extern_rec != nullptr ? *pq.extern_rec
                                    : report_.sends[pq.send_index];
  }

  /// Per-source fault stream, created on first use; nullptr when the
  /// engine runs without an impairment scenario. The name is derived from
  /// the *original trace source*, not the querier, so the pattern a source
  /// sees is partition-independent (multi-controller equivalence). On
  /// resume the stream fast-forwards to its checkpointed draw position.
  fault::FaultStream* fault_stream(const char* prefix, const IpAddr& source) {
    if (!config_.fault.has_value()) return nullptr;
    std::string name = std::string(prefix) + source.to_string();
    auto it = fault_streams_.find(name);
    if (it == fault_streams_.end()) {
      it = fault_streams_
               .emplace(name, std::make_unique<fault::FaultStream>(*config_.fault,
                                                                   name))
               .first;
      if (config_.resume != nullptr) {
        auto rit = config_.resume->streams.find(name);
        if (rit != config_.resume->streams.end())
          it->second->restore(rit->second, clock_.real_origin());
      }
    }
    return it->second.get();
  }

  /// Cumulative queries sent for one source, lazily seeded from the resume
  /// checkpoint so snapshots always carry whole-replay counts.
  uint64_t& sent_count_for(const IpAddr& source) {
    auto it = sent_per_source_.find(source);
    if (it == sent_per_source_.end()) {
      uint64_t base = 0;
      if (config_.resume != nullptr) {
        auto rit = config_.resume->sent.find(source.to_string());
        if (rit != config_.resume->sent.end()) base = rit->second;
      }
      it = sent_per_source_.emplace(source, base).first;
    }
    return it->second;
  }

  void run() {
    auto add = loop_.add_fd(wake_fd_.get(), net::Interest{true, false},
                            [this](bool, bool) { on_wake(); });
    if (add.ok()) {
      if (config_.batched_io)
        loop_.add_flush_hook([this] { flush_all_udp(); });
      if (config_.supervise) {
        arm_heartbeat();
        if (config_.fault.has_value() &&
            config_.fault->stall_querier == static_cast<int64_t>(id_)) {
          loop_.add_timer_after(std::max<TimeNs>(config_.fault->stall_after, 0),
                                [this] {
                                  stalled_ = true;
                                  loop_.stop();
                                });
        }
      }
      if (config_.checkpointing()) arm_snapshot();
      loop_.run();
    }
    if (stalled_) park();
    finalize_report();
    {
      std::lock_guard lock(life_mu_);
      finished_ = true;
      life_cv_.notify_all();
    }
  }

  /// The cooperative stall: stop beating and processing, wait to be reaped
  /// and released. Parking only ever happens under supervision (the stall
  /// trap is gated on it), and the engine keeps the supervisor alive until
  /// every querier has joined, so the reap→release handshake is guaranteed
  /// to arrive — this wait cannot hang the shutdown.
  void park() {
    std::unique_lock lock(life_mu_);
    parked_ = true;
    life_cv_.notify_all();
    life_cv_.wait(lock, [this] { return released_; });
  }

  void arm_heartbeat() {
    heartbeat_.beat();
    TimeNs period = std::max<TimeNs>(
        kMilli,
        std::min(config_.supervision_interval, config_.heartbeat_timeout / 4));
    loop_.add_timer_after(period, [this] { arm_heartbeat(); });
  }

  void arm_snapshot() {
    publish_snapshot();
    loop_.add_timer_after(config_.checkpoint_interval,
                          [this] { arm_snapshot(); });
  }

  void publish_snapshot() {
    if (!config_.checkpointing()) return;
    QuerierSnapshot s;
    s.valid = true;
    s.partial.queries_sent = report_.queries_sent;
    s.partial.responses_received = report_.responses_received;
    s.partial.send_errors = report_.send_errors;
    s.partial.connections_opened = report_.connections_opened;
    s.partial.max_in_flight = report_.max_in_flight;
    s.partial.shed_queries = report_.shed_queries;
    s.partial.lifecycle = report_.lifecycle;
    s.partial.latency_hist = report_.latency_hist;
    for (const auto& [name, stream] : fault_streams_) {
      s.partial.impairments.merge(stream->counters());
      s.streams[name] = stream->position(clock_.real_origin());
    }
    auto snap_pending = [&](const PendingTable& table) {
      table.for_each([&](const PendingQuery& pq) {
        CheckpointPending cp;
        cp.record = record_of(pq);
        cp.transport = pq.transport;
        cp.retries_used = pq.retries_used;
        cp.payload = pq.payload;
        s.pending.push_back(std::move(cp));
      });
    };
    for (const auto& [source, us] : udp_socks_) {
      snap_pending(us->pending);
      // Staged sends are in flight for checkpoint purposes: losing them on
      // resume would silently drop queries the schedule already committed.
      for (const auto& st : us->stage) {
        CheckpointPending cp;
        cp.record = record_of(st.pq);
        cp.transport = st.pq.transport;
        cp.retries_used = st.pq.retries_used;
        cp.payload = st.pq.payload;
        s.pending.push_back(std::move(cp));
      }
    }
    for (const auto& [source, conn] : tcp_conns_) snap_pending(conn->pending);
    for (const auto& [source, n] : sent_per_source_)
      s.sent[source.to_string()] = n;
    std::lock_guard lock(snap_mu_);
    snap_ = std::move(s);
  }

  void on_wake() {
    uint64_t buf;
    while (::read(wake_fd_.get(), &buf, sizeof(buf)) > 0) {
    }
    heartbeat_.beat();
    // Drain the input queue without blocking: try_pop via size probe (this
    // thread is the only consumer while it runs; reap() only drains after
    // the thread parks).
    while (true) {
      if (queue_.size() == 0) break;
      auto rec = queue_.pop();
      if (!rec.has_value()) break;
      handle_record(std::move(*rec));
    }
    drain_adopt_inbox();
    if (queue_.closed_and_empty()) {
      input_done_ = true;
      maybe_finish();
    }
  }

  void drain_adopt_inbox() {
    std::vector<PendingQuery> batch;
    std::vector<TraceRecord> records;
    {
      std::lock_guard lock(adopt_mu_);
      batch.swap(adopt_inbox_);
      records.swap(record_inbox_);
    }
    for (auto& pq : batch) adopt_pending(std::move(pq));
    // A failed sibling's never-sent records re-enter the normal dispatch
    // path: still-future timestamps keep their original schedule.
    for (auto& rec : records) handle_record(std::move(rec));
  }

  /// Take over an in-flight query salvaged from a failed sibling or
  /// restored from a checkpoint: resend it through this querier's own
  /// socket for the source and track it in the matching pending table.
  /// The outcome resolves into the query's original send record.
  void adopt_pending(PendingQuery pq) {
    SendRecord& sr = *pq.extern_rec;
    pq.key = next_key_++;  // keys are per-querier; the orphan's would collide
    ++report_.lifecycle.adopted_resends;
    TimeNs now = mono_now_ns();
    if (sr.send_time == 0) {
      // Restored from a checkpoint: the original monotonic timestamps died
      // with the process; latency restarts from the adoption resend.
      sr.send_time = now;
      pq.first_send = now;
    }
    auto fail = [&] {
      ++report_.send_errors;
      if (sr.outcome == QueryOutcome::Pending) {
        sr.outcome = QueryOutcome::Errored;
        ++report_.lifecycle.expired;
      }
    };
    if (pq.transport == Transport::Udp) {
      UdpSock* us = udp_socket_for(pq.source);
      if (us == nullptr) {
        fail();
        return;
      }
      if (config_.batched_io) {
        stage_udp(*us, std::move(pq), kStageAdopt, false);
        return;
      }
      auto sent = us->sock->send_to(config_.server, pq.payload);
      if (!sent.ok()) {
        fail();
        return;
      }
      pq.wire_sent = *sent;
      if (!pq.wire_sent) ++report_.lifecycle.deferred_sends;
      pq.deadline =
          now + (pq.wire_sent ? config_.query_timeout : kDeferredSendDelay);
      TimeNs deadline = pq.deadline;
      if (us->pending.insert(std::move(pq))) ++report_.lifecycle.duplicate_ids;
      note_in_flight(+1);
      schedule_lifecycle(deadline);
    } else {
      TcpConn* conn = tcp_conn_for(pq.source);
      if (conn == nullptr) {
        fail();
        return;
      }
      conn->last_activity = now;
      pq.deadline = now + config_.query_timeout;
      TimeNs deadline = pq.deadline;
      if (!conn->connected) {
        conn->backlog.push_back(pq.payload);
        if (conn->pending.insert(std::move(pq)))
          ++report_.lifecycle.duplicate_ids;
        note_in_flight(+1);
      } else {
        size_t still_pending = 0;
        auto out = tcp_send(conn, pq.source, now, pq.payload, &still_pending);
        IpAddr source = pq.source;
        if (conn->pending.insert(std::move(pq)))
          ++report_.lifecycle.duplicate_ids;
        note_in_flight(+1);
        if (out == net::TcpSendOutcome::Error ||
            out == net::TcpSendOutcome::LinkDown) {
          close_tcp(source, /*lost=*/true);
          return;
        }
        if (still_pending > 0)
          (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, true});
      }
      schedule_lifecycle(deadline);
    }
  }

  void handle_record(TraceRecord rec) {
    if (config_.timed) {
      TimeNs deadline = clock_.deadline_for(rec.timestamp);
      if (deadline > mono_now_ns()) {
        ++pending_timers_;
        auto shared = std::make_shared<TraceRecord>(std::move(rec));
        // Track deferred records by token so reap() can salvage work that
        // otherwise lives only inside timer closures.
        uint64_t token = next_deferred_++;
        deferred_records_.emplace(token, shared);
        loop_.add_timer_at(deadline, [this, token, shared] {
          deferred_records_.erase(token);
          --pending_timers_;
          send_query(*shared);
          maybe_finish();
        });
        return;
      }
    }
    send_query(rec);  // behind schedule or fast mode: send immediately
  }

  void note_in_flight(int64_t delta) {
    in_flight_ += delta;
    report_.max_in_flight =
        std::max(report_.max_in_flight, static_cast<uint64_t>(in_flight_));
  }

  void fail_send(size_t index) {
    ++report_.send_errors;
    report_.sends[index].outcome = QueryOutcome::Errored;
  }

  void send_query(const TraceRecord& rec) {
    size_t index = report_.sends.size();
    SendRecord sr;
    sr.trace_time = rec.timestamp;
    sr.send_time = mono_now_ns();
    sr.source = rec.src.addr;
    sr.querier = id_;
    report_.sends.push_back(sr);
    ++report_.queries_sent;
    ++sent_count_for(rec.src.addr);
    last_send_ = sr.send_time;

    PendingQuery pq;
    pq.key = next_key_++;
    pq.dns_id = rec.dns_payload.size() >= 2
                    ? static_cast<uint16_t>(rec.dns_payload[0] << 8 |
                                            rec.dns_payload[1])
                    : 0;
    pq.send_index = index;
    pq.transport = rec.transport;
    pq.first_send = sr.send_time;
    pq.source = rec.src.addr;
    pq.payload = rec.dns_payload;

    if (rec.transport == Transport::Udp) {
      UdpSock* us = udp_socket_for(rec.src.addr);
      if (us == nullptr) {
        fail_send(index);
        return;
      }
      if (config_.batched_io) {
        stage_udp(*us, std::move(pq), kStageFresh, false);
        return;
      }
      auto sent = us->sock->send_to(config_.server, pq.payload);
      if (!sent.ok()) {
        fail_send(index);
        return;
      }
      if (*sent) {
        pq.deadline = pq.first_send + config_.query_timeout;
      } else {
        // Kernel buffer full: the query stays alive in the pending table
        // and the lifecycle timer puts it on the wire shortly — it is
        // deferred, not silently lost.
        pq.wire_sent = false;
        pq.deadline = pq.first_send + kDeferredSendDelay;
        ++report_.lifecycle.deferred_sends;
      }
      TimeNs deadline = pq.deadline;
      if (us->pending.insert(std::move(pq))) ++report_.lifecycle.duplicate_ids;
      note_in_flight(+1);
      schedule_lifecycle(deadline);
    } else {
      TcpConn* conn = tcp_conn_for(rec.src.addr);
      if (conn == nullptr) {
        fail_send(index);
        return;
      }
      conn->last_activity = sr.send_time;
      pq.deadline = pq.first_send + config_.query_timeout;
      TimeNs deadline = pq.deadline;
      if (!conn->connected) {
        conn->backlog.push_back(pq.payload);
        if (conn->pending.insert(std::move(pq)))
          ++report_.lifecycle.duplicate_ids;
        note_in_flight(+1);
      } else {
        size_t still_pending = 0;
        auto out = tcp_send(conn, rec.src.addr, sr.send_time, pq.payload,
                            &still_pending);
        if (conn->pending.insert(std::move(pq)))
          ++report_.lifecycle.duplicate_ids;
        note_in_flight(+1);
        if (out == net::TcpSendOutcome::Error ||
            out == net::TcpSendOutcome::LinkDown) {
          // Connection broke mid-send (or the link flapped away under it):
          // the pending entry survives in the table, so the reconnect path
          // resends it.
          close_tcp(rec.src.addr, /*lost=*/true);
          return;
        }
        // An Eaten message simply stays pending; the lifecycle timer
        // resends it like any other timeout.
        if (still_pending > 0) {
          // Kernel buffer full: wait for writability to flush the rest.
          (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, true});
        }
      }
      schedule_lifecycle(deadline);
    }
  }

  UdpSock* udp_socket_for(const IpAddr& source) {
    auto it = udp_socks_.find(source);
    if (it != udp_socks_.end()) return it->second.get();
    auto sock = net::UdpSocket::bind(Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 0});
    if (!sock.ok()) return nullptr;
    auto owned = std::make_unique<UdpSock>();
    owned->sock = std::make_unique<net::ImpairedUdpSocket>(
        std::move(*sock), fault_stream("udp:", source), &loop_);
    UdpSock* raw = owned.get();
    auto add = loop_.add_fd(raw->sock->fd(), net::Interest{true, false},
                            [this, raw](bool, bool) { on_udp_readable(raw); });
    if (!add.ok()) return nullptr;
    udp_socks_.emplace(source, std::move(owned));
    return raw;
  }

  // ---- batched UDP send path (batched_io) ----

  void stage_udp(UdpSock& us, PendingQuery pq, uint8_t mode, bool was_on_wire) {
    us.stage.push_back(StagedSend{std::move(pq), mode, was_on_wire});
    ++staged_count_;
  }

  /// Flush-hook body: one sendmmsg per socket covers everything staged
  /// during this poll round (the hook runs after due timers and before the
  /// loop blocks, so no send ever sits across an epoll_wait).
  void flush_all_udp() {
    if (staged_count_ == 0) return;
    for (auto& [source, us] : udp_socks_) flush_udp(*us);
    maybe_finish();
  }

  void flush_udp(UdpSock& us) {
    if (us.stage.empty()) return;
    std::vector<StagedSend> batch;
    batch.swap(us.stage);
    staged_count_ -= batch.size();
    us.stage_dgs.clear();
    for (const auto& st : batch)
      us.stage_dgs.push_back({config_.server, st.pq.payload});
    auto res = us.sock->send_batch(us.stage_dgs, us.wire_flags);
    TimeNs now = mono_now_ns();
    if (!res.ok()) {
      for (auto& st : batch) fail_staged(std::move(st));
      return;
    }
    // FIFO resolution preserves the scalar path's accounting order; a
    // wire_flags entry of 0 is the batched spelling of send_to() == false
    // (kernel buffer full: deferred, retried by the lifecycle timer).
    for (size_t i = 0; i < batch.size(); ++i)
      finish_udp_send(us, std::move(batch[i]), us.wire_flags[i] != 0, now);
  }

  /// The batched spelling of each scalar call site's send-error branch.
  void fail_staged(StagedSend st) {
    SendRecord& sr = record_of(st.pq);
    ++report_.send_errors;
    switch (st.mode) {
      case kStageFresh:
        sr.outcome = QueryOutcome::Errored;
        break;
      case kStageAdopt:
        if (sr.outcome == QueryOutcome::Pending) {
          sr.outcome = QueryOutcome::Errored;
          ++report_.lifecycle.expired;
        }
        break;
      default:  // kStageRetry
        ++report_.lifecycle.expired;
        sr.outcome = QueryOutcome::Errored;
        note_in_flight(-1);
        break;
    }
  }

  /// Post-send bookkeeping for one flushed entry, mode-exact against the
  /// scalar call sites in send_query / adopt_pending / handle_udp_due.
  void finish_udp_send(UdpSock& us, StagedSend st, bool on_wire, TimeNs now) {
    PendingQuery pq = std::move(st.pq);
    if (st.mode == kStageRetry) {
      SendRecord& sr = record_of(pq);
      if (st.was_on_wire) {
        ++report_.lifecycle.retries;
        ++sr.retries;
      } else if (on_wire) {
        ++report_.lifecycle.deferred_sends;
      }
      pq.wire_sent = st.was_on_wire || on_wire;
      pq.deadline = now + (pq.wire_sent
                               ? retry_backoff(config_.query_timeout,
                                               pq.retries_used,
                                               config_.retry_backoff_cap)
                               : kDeferredSendDelay);
      TimeNs deadline = pq.deadline;
      us.pending.insert(std::move(pq));  // reinsert: not a fresh collision
      schedule_lifecycle(deadline);
      return;
    }
    // Fresh and adopted sends share the post-send shape; they differ only
    // in the deadline origin (trace send time vs adoption time).
    pq.wire_sent = on_wire;
    if (!on_wire) ++report_.lifecycle.deferred_sends;
    TimeNs base = st.mode == kStageFresh ? pq.first_send : now;
    pq.deadline = base + (on_wire ? config_.query_timeout : kDeferredSendDelay);
    TimeNs deadline = pq.deadline;
    if (us.pending.insert(std::move(pq))) ++report_.lifecycle.duplicate_ids;
    note_in_flight(+1);
    schedule_lifecycle(deadline);
  }

  TcpConn* tcp_conn_for(const IpAddr& source) {
    auto it = tcp_conns_.find(source);
    if (it != tcp_conns_.end()) return it->second.get();
    auto stream = net::TcpStream::connect(config_.server);
    if (!stream.ok()) return nullptr;
    auto owned = std::make_unique<TcpConn>(std::move(*stream));
    TcpConn* raw = owned.get();
    raw->fault = fault_stream("tcp:", source);
    // Slow-client verdict is a pure function of (seed, per-querier open
    // order), so a fixed-seed run injects the same slowloris mix every time.
    raw->slow = config_.fault.has_value() &&
                config_.fault->is_slow_client(tcp_conn_seq_++);
    (void)raw->stream.set_nodelay(true);  // §5.2.1 disables Nagle at clients
    auto add = loop_.add_fd(raw->stream.fd(), net::Interest{true, true},
                            [this, source, raw](bool readable, bool writable) {
                              on_tcp_event(source, raw, readable, writable);
                            });
    if (!add.ok()) return nullptr;
    ++report_.connections_opened;
    tcp_conns_.emplace(source, std::move(owned));
    if (sweep_timer_ == 0) arm_sweep();
    return raw;
  }

  /// Single choke point for putting a framed query on a TCP connection.
  /// Normal connections go through the impairment layer; a slow_client
  /// connection instead queues the frame for one-byte-at-a-time dripping
  /// and reports Sent — the query then ages out through the ordinary
  /// timeout/retry lifecycle, which is precisely what a slowloris victim
  /// sees.
  net::TcpSendOutcome tcp_send(TcpConn* conn, const IpAddr& source, TimeNs now,
                               const std::vector<uint8_t>& payload,
                               size_t* pending_out = nullptr) {
    if (pending_out != nullptr) *pending_out = 0;
    if (conn->slow) {
      conn->drip_out.push_back(static_cast<uint8_t>(payload.size() >> 8));
      conn->drip_out.push_back(static_cast<uint8_t>(payload.size() & 0xff));
      conn->drip_out.insert(conn->drip_out.end(), payload.begin(),
                            payload.end());
      arm_drip(conn, source);
      return net::TcpSendOutcome::Sent;
    }
    return net::impaired_tcp_send(conn->stream, conn->fault, now, payload,
                                  pending_out);
  }

  void arm_drip(TcpConn* conn, const IpAddr& source) {
    if (conn->drip_armed || !conn->connected) return;
    conn->drip_armed = true;
    TimeNs interval =
        config_.fault.has_value() ? config_.fault->slow_drip : 100 * kMilli;
    // The timer holds only the source key: if the connection is gone (or
    // replaced by a reconnect) when it fires, the lookup resolves to
    // whatever is current and the stale drip state dies with the old conn.
    loop_.add_timer_after(interval, [this, source] { drip_tick(source); });
  }

  void drip_tick(const IpAddr& source) {
    auto it = tcp_conns_.find(source);
    if (it == tcp_conns_.end()) return;
    TcpConn* conn = it->second.get();
    conn->drip_armed = false;
    if (conn->drip_pos < conn->drip_out.size()) {
      uint8_t byte = conn->drip_out[conn->drip_pos];
      ssize_t n = ::send(conn->stream.fd(), &byte, 1, MSG_NOSIGNAL);
      if (n == 1) ++conn->drip_pos;
      // EAGAIN (or a dying socket): retry next tick; a real failure
      // surfaces through the readable path as a close.
    }
    if (conn->drip_pos < conn->drip_out.size()) arm_drip(conn, source);
  }

  void on_udp_readable(UdpSock* us) {
    if (config_.batched_io) {
      // Drain with recvmmsg: the views alias the socket's receive arena,
      // valid until the next recv_batch call — match_response consumes
      // them before then.
      while (true) {
        auto batch = us->sock->recv_batch();
        if (!batch.ok()) {
          ++report_.lifecycle.socket_errors;
          return;
        }
        if (batch->empty()) return;
        for (const auto& view : *batch)
          match_response(view.payload, us->pending);
      }
    }
    while (true) {
      auto dg = us->sock->recv();
      if (!dg.ok()) {
        ++report_.lifecycle.socket_errors;
        return;
      }
      if (!dg->has_value()) return;
      match_response((**dg).payload, us->pending);
    }
  }

  void on_tcp_event(const IpAddr& source, TcpConn* conn, bool readable,
                    bool writable) {
    if (writable && !conn->connected) {
      conn->connected = true;
      TimeNs now = mono_now_ns();
      for (auto& msg : conn->backlog) {
        auto out = tcp_send(conn, source, now, msg);
        if (out == net::TcpSendOutcome::Error ||
            out == net::TcpSendOutcome::LinkDown) {
          close_tcp(source, /*lost=*/true);
          return;
        }
        // Eaten messages stay pending and resend on timeout.
      }
      conn->backlog.clear();
      // Keep write interest while the flush left bytes behind — dropping it
      // here would strand a partial send forever.
      (void)loop_.modify_fd(conn->stream.fd(),
                            net::Interest{true, conn->stream.pending_bytes() > 0});
    } else if (writable) {
      auto pending = conn->stream.flush();
      if (!pending.ok()) {
        close_tcp(source, /*lost=*/true);
        return;
      }
      if (*pending == 0)
        (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, false});
    }
    if (readable) {
      bool closed = false;
      auto messages = conn->stream.read_messages(closed);
      if (messages.ok()) {
        for (const auto& msg : *messages) match_response(msg, conn->pending);
      } else {
        ++report_.lifecycle.socket_errors;
      }
      conn->last_activity = mono_now_ns();
      if (closed || !messages.ok()) close_tcp(source, /*lost=*/true);
    }
  }

  /// Tear down a TCP connection. `lost` marks an involuntary loss (peer
  /// close or socket error): unanswered queries are then resent over a
  /// fresh connection while the per-source reconnect budget lasts; beyond
  /// it (or on voluntary idle close) they become Errored.
  void close_tcp(const IpAddr& source, bool lost) {
    auto it = tcp_conns_.find(source);
    if (it == tcp_conns_.end()) return;
    loop_.remove_fd(it->second->stream.fd());
    std::vector<PendingQuery> orphans = it->second->pending.drain();
    uint32_t reconnects_used = it->second->reconnects_used;
    tcp_conns_.erase(it);
    if (orphans.empty()) return;

    TcpConn* fresh = nullptr;
    if (lost && config_.tcp_reconnect &&
        reconnects_used < config_.max_tcp_reconnects) {
      fresh = tcp_conn_for(source);
      if (fresh != nullptr) {
        fresh->reconnects_used = reconnects_used + 1;
        ++report_.lifecycle.tcp_reconnects;
      }
    }
    TimeNs now = mono_now_ns();
    for (auto& pq : orphans) {
      SendRecord& sr = record_of(pq);
      if (fresh != nullptr && pq.retries_used < config_.max_retries) {
        ++pq.retries_used;
        ++sr.retries;
        ++report_.lifecycle.retries;
        pq.deadline = now + retry_backoff(config_.query_timeout,
                                          pq.retries_used,
                                          config_.retry_backoff_cap);
        TimeNs deadline = pq.deadline;
        fresh->backlog.push_back(pq.payload);
        fresh->pending.insert(std::move(pq));
        schedule_lifecycle(deadline);
      } else {
        ++report_.lifecycle.expired;
        sr.outcome = QueryOutcome::Errored;
        note_in_flight(-1);
      }
    }
    maybe_finish();
  }

  void arm_sweep() {
    sweep_timer_ = loop_.add_timer_after(kSecond, [this] {
      TimeNs cutoff = mono_now_ns() - config_.tcp_idle_timeout;
      for (auto it = tcp_conns_.begin(); it != tcp_conns_.end();) {
        auto next = std::next(it);
        if (it->second->last_activity < cutoff)
          close_tcp(it->first, /*lost=*/false);
        it = next;
      }
      sweep_timer_ = 0;
      if (!tcp_conns_.empty()) arm_sweep();
      maybe_finish();
    });
  }

  // ---- lifecycle timer: timeouts, retransmits, bounded expiry ----

  /// Arm (or pull earlier) the single timer that fires at the earliest
  /// pending deadline across every table this querier owns.
  void schedule_lifecycle(TimeNs deadline) {
    if (lifecycle_timer_ != 0) {
      if (deadline >= lifecycle_deadline_) return;
      loop_.cancel_timer(lifecycle_timer_);
    }
    lifecycle_deadline_ = deadline;
    lifecycle_timer_ =
        loop_.add_timer_at(deadline, [this] { on_lifecycle_due(); });
  }

  void on_lifecycle_due() {
    lifecycle_timer_ = 0;
    heartbeat_.beat();
    TimeNs now = mono_now_ns();
    for (auto& [source, us] : udp_socks_) {
      for (auto& pq : us->pending.take_due(now))
        handle_udp_due(*us, std::move(pq), now);
    }
    // Collect due TCP entries first: handling one may close/reopen
    // connections, which mutates tcp_conns_ mid-iteration otherwise.
    std::vector<std::pair<IpAddr, PendingQuery>> tcp_due;
    for (auto& [source, conn] : tcp_conns_) {
      for (auto& pq : conn->pending.take_due(now))
        tcp_due.emplace_back(source, std::move(pq));
    }
    for (auto& [source, pq] : tcp_due) handle_tcp_due(source, std::move(pq), now);
    rearm_lifecycle();
    maybe_finish();
  }

  void rearm_lifecycle() {
    std::optional<TimeNs> next;
    auto consider = [&next](std::optional<TimeNs> d) {
      if (d.has_value() && (!next.has_value() || *d < *next)) next = d;
    };
    for (auto& [source, us] : udp_socks_) consider(us->pending.next_deadline());
    for (auto& [source, conn] : tcp_conns_) consider(conn->pending.next_deadline());
    if (next.has_value()) schedule_lifecycle(*next);
  }

  void handle_udp_due(UdpSock& us, PendingQuery pq, TimeNs now) {
    SendRecord& sr = record_of(pq);
    if (pq.wire_sent) ++report_.lifecycle.timeouts;
    if (pq.retries_used >= config_.max_retries) {
      ++report_.lifecycle.expired;
      sr.outcome = pq.wire_sent ? QueryOutcome::TimedOut : QueryOutcome::Errored;
      note_in_flight(-1);
      return;
    }
    ++pq.retries_used;
    bool was_on_wire = pq.wire_sent;
    if (config_.batched_io) {
      stage_udp(us, std::move(pq), kStageRetry, was_on_wire);
      return;
    }
    auto sent = us.sock->send_to(config_.server, pq.payload);
    if (!sent.ok()) {
      ++report_.send_errors;
      ++report_.lifecycle.expired;
      sr.outcome = QueryOutcome::Errored;
      note_in_flight(-1);
      return;
    }
    if (was_on_wire) {
      ++report_.lifecycle.retries;
      ++sr.retries;
    } else if (*sent) {
      // First time this query actually reached the wire; latency still
      // counts from the original send attempt.
      ++report_.lifecycle.deferred_sends;
    }
    pq.wire_sent = was_on_wire || *sent;
    pq.deadline = now + (pq.wire_sent
                             ? retry_backoff(config_.query_timeout,
                                             pq.retries_used,
                                             config_.retry_backoff_cap)
                             : kDeferredSendDelay);
    us.pending.insert(std::move(pq));  // reinsert: not a fresh collision
  }

  void handle_tcp_due(const IpAddr& source, PendingQuery pq, TimeNs now) {
    SendRecord& sr = record_of(pq);
    ++report_.lifecycle.timeouts;
    if (pq.retries_used >= config_.max_retries) {
      ++report_.lifecycle.expired;
      sr.outcome = QueryOutcome::TimedOut;
      note_in_flight(-1);
      return;
    }
    ++pq.retries_used;
    TcpConn* conn = tcp_conn_for(source);  // reuse, or reopen if it vanished
    if (conn == nullptr) {
      ++report_.send_errors;
      ++report_.lifecycle.expired;
      sr.outcome = QueryOutcome::Errored;
      note_in_flight(-1);
      return;
    }
    ++report_.lifecycle.retries;
    ++sr.retries;
    pq.deadline = now + retry_backoff(config_.query_timeout, pq.retries_used,
                                      config_.retry_backoff_cap);
    if (!conn->connected) {
      conn->backlog.push_back(pq.payload);
      conn->pending.insert(std::move(pq));
      return;
    }
    size_t still_pending = 0;
    auto out = tcp_send(conn, source, now, pq.payload, &still_pending);
    if (out == net::TcpSendOutcome::Error ||
        out == net::TcpSendOutcome::LinkDown) {
      conn->pending.insert(std::move(pq));
      close_tcp(source, /*lost=*/true);  // resends via the reconnect path
      return;
    }
    if (still_pending > 0)
      (void)loop_.modify_fd(conn->stream.fd(), net::Interest{true, true});
    conn->pending.insert(std::move(pq));
  }

  void match_response(std::span<const uint8_t> payload, PendingTable& pending) {
    if (payload.size() < 2) return;
    uint16_t id = static_cast<uint16_t>(payload[0] << 8 | payload[1]);
    auto pq = pending.match(id);
    if (!pq.has_value()) {
      // Late (already expired) or unsolicited — the id names no live query.
      ++report_.lifecycle.unmatched_responses;
      return;
    }
    SendRecord& sr = record_of(*pq);
    sr.latency = mono_now_ns() - sr.send_time;
    sr.outcome = QueryOutcome::Answered;
    ++report_.responses_received;
    report_.latency_hist.add(sr.latency);
    if (sr.retries > 0) ++report_.lifecycle.answered_after_retry;
    note_in_flight(-1);
    maybe_finish();
  }

  void maybe_finish() {
    if (!input_done_ || pending_timers_ > 0 || stopping_) return;
    // Every query reaches a terminal outcome (answer, expiry, error), so
    // in-flight hitting zero is the natural end; drain_grace only caps the
    // wait when the retry/expiry schedule outlives the caller's patience.
    // Staged-but-unflushed sends count as in flight.
    if (in_flight_ == 0 && staged_count_ == 0) {
      stopping_ = true;
      loop_.stop();
      return;
    }
    if (drain_timer_ == 0) {
      drain_timer_ = loop_.add_timer_after(config_.drain_grace, [this] {
        stopping_ = true;
        loop_.stop();
      });
    }
  }

  void finalize_report() {
    // Put any still-staged sends on the wire (or into the pending tables,
    // where the abandonment sweep below accounts them) before counting.
    if (config_.batched_io) flush_all_udp();
    // Refuse further adoptions, then account anything still in the inbox —
    // orphans that arrived too late to resend are errored, never lost.
    std::vector<PendingQuery> leftover;
    std::vector<TraceRecord> leftover_records;
    {
      std::lock_guard lock(adopt_mu_);
      adopt_closed_ = true;
      leftover.swap(adopt_inbox_);
      leftover_records.swap(record_inbox_);
    }
    report_.shed_queries += leftover_records.size();
    for (auto& pq : leftover) {
      SendRecord& sr = record_of(pq);
      if (sr.outcome == QueryOutcome::Pending) {
        sr.outcome = QueryOutcome::Errored;
        ++report_.lifecycle.expired;
      }
    }
    // Queries still pending at shutdown (drain_grace fired before their
    // expiry) are abandoned: counted, never silently lost.
    auto abandon = [this](PendingQuery&& pq) {
      SendRecord& sr = record_of(pq);
      if (sr.outcome != QueryOutcome::Pending) return;
      sr.outcome = pq.wire_sent ? QueryOutcome::TimedOut : QueryOutcome::Errored;
      ++report_.lifecycle.expired;
    };
    for (auto& [source, us] : udp_socks_)
      for (auto& pq : us->pending.drain()) abandon(std::move(pq));
    for (auto& [source, conn] : tcp_conns_)
      for (auto& pq : conn->pending.drain()) abandon(std::move(pq));
    for (const auto& sr : report_.sends) {
      report_.replay_end = std::max(report_.replay_end, sr.send_time);
    }
    for (const auto& [name, stream] : fault_streams_)
      report_.impairments.merge(stream->counters());
    // Final (quiescent) snapshot: pending tables are empty, counters final.
    publish_snapshot();
    heartbeat_.mark_done();
  }

  uint32_t id_;
  const EngineConfig& config_;
  const ReplayClock& clock_;
  BoundedQueue<TraceRecord> queue_;
  net::Fd wake_fd_;
  net::EventLoop loop_;
  std::thread thread_;

  std::unordered_map<IpAddr, std::unique_ptr<UdpSock>, IpAddrHash> udp_socks_;
  std::unordered_map<IpAddr, std::unique_ptr<TcpConn>, IpAddrHash> tcp_conns_;
  uint64_t tcp_conn_seq_ = 0;  // per-querier open order, keys is_slow_client()
  // Named per-source impairment streams ("udp:<src>" / "tcp:<src>"),
  // created lazily; they outlive reconnects so a source's draw sequence is
  // continuous for the whole replay.
  std::unordered_map<std::string, std::unique_ptr<fault::FaultStream>>
      fault_streams_;

  EngineReport report_;
  uint64_t next_key_ = 1;
  int64_t in_flight_ = 0;
  size_t staged_count_ = 0;  ///< UDP sends awaiting the sendmmsg flush
  size_t pending_timers_ = 0;
  bool input_done_ = false;
  bool stopping_ = false;
  bool stalled_ = false;
  net::EventLoop::TimerId drain_timer_ = 0;
  net::EventLoop::TimerId sweep_timer_ = 0;
  net::EventLoop::TimerId lifecycle_timer_ = 0;
  TimeNs lifecycle_deadline_ = 0;
  TimeNs last_send_ = 0;

  // Timed records waiting on their send timers, salvageable by reap().
  std::unordered_map<uint64_t, std::shared_ptr<TraceRecord>> deferred_records_;
  uint64_t next_deferred_ = 1;

  // Per-source cumulative sent counts (checkpoint trace positions).
  std::unordered_map<IpAddr, uint64_t, IpAddrHash> sent_per_source_;

  // Supervision state.
  Heartbeat heartbeat_;
  std::mutex life_mu_;
  std::condition_variable life_cv_;
  bool parked_ = false;
  bool finished_ = false;
  bool released_ = false;

  // Cross-thread adoption inboxes (failed-sibling salvage, checkpoint
  // resume): in-flight queries to resend, and never-sent trace records to
  // dispatch through the normal schedule.
  std::mutex adopt_mu_;
  bool adopt_closed_ = false;
  std::vector<PendingQuery> adopt_inbox_;
  std::vector<TraceRecord> record_inbox_;

  // Latest published checkpoint snapshot.
  mutable std::mutex snap_mu_;
  QuerierSnapshot snap_;
};

// ---------------------------------------------------------------------------
// Distributor: fans records out to its queriers, same-source sticky, and
// folds their reports (counters, histograms, send records) into one on
// collect so the controller merges per-distributor, not per-querier.
//
// This is also where the self-healing happens: the supervisor's failure
// callback reaps a dead querier, moves its sticky sources to a live
// sibling, re-dispatches its unsent records and hands its in-flight
// queries to the sibling for adoption; and where overload shedding
// applies — a full querier queue either back-pressures (Block), evicts
// the oldest record with accounting (DropOldest), or blocks with the
// stall time surfaced (ClampRate) so the operator sees what the clock
// distortion cost.
// ---------------------------------------------------------------------------
class QueryEngine::Distributor {
 public:
  Distributor(uint32_t first_querier_id, size_t querier_count,
              const EngineConfig& config, const ReplayClock& clock)
      : config_(config), queue_(config.queue_capacity) {
    for (size_t i = 0; i < querier_count; ++i) {
      queriers_.push_back(std::make_unique<Querier>(
          first_querier_id + static_cast<uint32_t>(i), config, clock));
    }
    alive_.assign(queriers_.size(), true);
    thread_ = std::thread([this] { run(); });
  }

  ~Distributor() {
    if (thread_.joinable()) thread_.join();
  }

  /// Controller thread: overload policy applies here too, so a saturated
  /// distributor sheds instead of silently stretching the replay clock.
  void submit(TraceRecord rec) {
    PushResult pr = push_with_policy(queue_, rec, nullptr);
    if (pr != PushResult::Ok) shed_.fetch_add(1, std::memory_order_relaxed);
  }

  void finish() { queue_.close(); }

  void register_watches(Supervisor& supervisor, size_t dist_index) {
    supervisor.watch("distributor-" + std::to_string(dist_index), &heartbeat_,
                     nullptr);
    for (size_t i = 0; i < queriers_.size(); ++i) {
      supervisor.watch("querier-" + std::to_string(queriers_[i]->id()),
                       &queriers_[i]->heartbeat(), [this, i] { recover(i); });
    }
  }

  /// Supervisor thread: a querier's heartbeat went stale. Reap it, move
  /// its sources to a sibling, re-dispatch what it never sent and have the
  /// sibling adopt what was in flight. Every salvaged query either reaches
  /// the sibling or is accounted (shed / expired) — none vanish.
  void recover(size_t idx) {
    Querier::Salvage salvage;
    if (!queriers_[idx]->reap(salvage)) return;  // finished normally
    size_t target = SIZE_MAX;
    uint64_t moved = 0;
    {
      std::lock_guard lock(map_mu_);
      alive_[idx] = false;
      for (size_t t = 0; t < queriers_.size(); ++t) {
        if (alive_[t]) {
          target = t;
          break;
        }
      }
      if (target != SIZE_MAX) {
        for (auto& [source, qi] : source_to_querier_) {
          if (qi == idx) {
            qi = target;
            ++moved;
          }
        }
      }
    }
    queriers_[idx]->release();
    {
      std::lock_guard lock(recover_mu_);
      ++recover_report_.querier_failures;
      recover_report_.sources_reassigned += moved;
    }
    if (target == SIZE_MAX) {
      graveyard(std::move(salvage));
      return;
    }
    // Never-sent records and in-flight queries both go through the adopt
    // inboxes — the sibling's input queue is closed once routing finished,
    // but the inboxes stay open while it drains, so a mid-drain recovery
    // re-dispatches on the original schedule instead of shedding.
    Querier& sibling = *queriers_[target];
    if (!salvage.unsent.empty() && !sibling.adopt_records(salvage.unsent)) {
      shed_.fetch_add(salvage.unsent.size(), std::memory_order_relaxed);
      salvage.unsent.clear();
    }
    if (!salvage.pending.empty() && !sibling.adopt(salvage.pending))
      graveyard(std::move(salvage));
  }

  /// Resume path (controller thread, before dispatch): route a restored
  /// in-flight query to the querier that owns its source.
  bool adopt_restored(PendingQuery pq) {
    size_t idx;
    {
      std::lock_guard lock(map_mu_);
      idx = querier_for_locked(pq.source);
    }
    if (idx == SIZE_MAX) return false;
    std::vector<PendingQuery> one;
    one.push_back(std::move(pq));
    return queriers_[idx]->adopt(one);
  }

  /// Fold the queriers' latest published snapshots (and this distributor's
  /// recovery/shedding ledger) into a checkpoint cut. Supervisor thread or
  /// controller thread (final checkpoint, after joins).
  void gather(CheckpointState& state) {
    for (auto& q : queriers_) {
      QuerierSnapshot s = q->snapshot();
      if (!s.valid) continue;
      state.partial.merge_from(std::move(s.partial));
      for (auto& cp : s.pending) state.pending.push_back(std::move(cp));
      for (auto& [name, pos] : s.streams) state.streams[name] = pos;
      for (auto& [ip, n] : s.sent) state.sent[ip] = n;
    }
    {
      std::lock_guard lock(recover_mu_);
      EngineReport copy = recover_report_;
      state.partial.merge_from(std::move(copy));
    }
    state.partial.shed_queries += shed_.load(std::memory_order_relaxed);
    state.partial.clamp_stall_ns +=
        clamp_stall_ns_.load(std::memory_order_relaxed);
    state.partial.queue_hwm = std::max(state.partial.queue_hwm, high_water());
  }

  void join_all() {
    if (thread_.joinable()) thread_.join();
    for (auto& q : queriers_) q->join();
  }

  EngineReport collect() {
    join_all();
    EngineReport merged;
    for (auto& q : queriers_) merged.merge_from(q->take_report());
    {
      // Copy, not move: the final checkpoint gather still reads this.
      std::lock_guard lock(recover_mu_);
      EngineReport copy = recover_report_;
      merged.merge_from(std::move(copy));
    }
    merged.shed_queries += shed_.load(std::memory_order_relaxed);
    merged.clamp_stall_ns += clamp_stall_ns_.load(std::memory_order_relaxed);
    merged.queue_hwm = std::max(merged.queue_hwm, high_water());
    return merged;
  }

 private:
  uint64_t high_water() const {
    uint64_t hwm = queue_.high_water();
    for (const auto& q : queriers_)
      hwm = std::max<uint64_t>(hwm, q->queue_high_water());
    return hwm;
  }

  /// Push under the configured overload policy. Block and ClampRate loop
  /// with a bounded grace so the producer keeps beating (and re-checks for
  /// closure — recovery closes a dead querier's queue to unblock us).
  PushResult push_with_policy(BoundedQueue<TraceRecord>& q, TraceRecord& rec,
                              Heartbeat* hb) {
    switch (config_.overload) {
      case OverloadPolicy::DropOldest: {
        PushResult pr = q.push_for(rec, config_.shed_grace);
        if (pr != PushResult::Full) return pr;
        std::optional<TraceRecord> evicted;
        pr = q.evict_push(rec, evicted);
        if (pr == PushResult::Ok && evicted.has_value())
          shed_.fetch_add(1, std::memory_order_relaxed);
        return pr;
      }
      case OverloadPolicy::ClampRate: {
        PushResult pr = q.push_for(rec, config_.shed_grace);
        if (pr != PushResult::Full) return pr;
        TimeNs t0 = mono_now_ns();
        while ((pr = q.push_for(rec, kPushBeatGrace)) == PushResult::Full) {
          if (hb != nullptr) hb->beat();
        }
        clamp_stall_ns_.fetch_add(mono_now_ns() - t0,
                                  std::memory_order_relaxed);
        return pr;
      }
      case OverloadPolicy::Block:
      default: {
        PushResult pr;
        while ((pr = q.push_for(rec, kPushBeatGrace)) == PushResult::Full) {
          if (hb != nullptr) hb->beat();
        }
        return pr;
      }
    }
  }

  /// Sticky querier for a source, skipping dead queriers; SIZE_MAX when
  /// none is left alive. Caller holds map_mu_.
  size_t querier_for_locked(const IpAddr& source) {
    auto it = source_to_querier_.find(source);
    if (it != source_to_querier_.end() && alive_[it->second]) return it->second;
    for (size_t tries = 0; tries < queriers_.size(); ++tries) {
      size_t idx = next_++ % queriers_.size();
      if (alive_[idx]) {
        source_to_querier_[source] = idx;
        return idx;
      }
    }
    return SIZE_MAX;
  }

  /// Nobody can take the salvage: account every query as lost, loudly.
  void graveyard(Querier::Salvage&& salvage) {
    std::lock_guard lock(recover_mu_);
    recover_report_.shed_queries += salvage.unsent.size();
    for (auto& pq : salvage.pending) {
      if (pq.extern_rec != nullptr &&
          pq.extern_rec->outcome == QueryOutcome::Pending) {
        pq.extern_rec->outcome = QueryOutcome::Errored;
        ++recover_report_.lifecycle.expired;
      }
    }
  }

  void run() {
    while (true) {
      // Bounded pop so the heartbeat advances even on an idle queue.
      auto rec = queue_.pop_for(kPushBeatGrace);
      heartbeat_.beat();
      if (!rec.has_value()) {
        if (queue_.closed_and_empty()) break;
        continue;
      }
      route(std::move(*rec));
    }
    for (auto& q : queriers_) q->finish();
    heartbeat_.mark_done();
  }

  void route(TraceRecord rec) {
    while (true) {
      size_t idx;
      {
        std::lock_guard lock(map_mu_);
        idx = querier_for_locked(rec.src.addr);
      }
      if (idx == SIZE_MAX) {
        // Every querier is dead: shed with accounting, never hang.
        shed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Querier& q = *queriers_[idx];
      PushResult pr = push_with_policy(q.queue(), rec, &heartbeat_);
      if (pr == PushResult::Ok) {
        q.wake();
        return;
      }
      // Closed: the querier died under us (recovery closed its queue).
      // The record survived the rejected push — re-route it.
      std::lock_guard lock(map_mu_);
      alive_[idx] = false;
      source_to_querier_.erase(rec.src.addr);
    }
  }

  const EngineConfig& config_;
  BoundedQueue<TraceRecord> queue_;
  std::vector<std::unique_ptr<Querier>> queriers_;
  Heartbeat heartbeat_;

  // Sticky source→querier map plus liveness, shared with the supervisor's
  // recovery callback (which remaps a dead querier's sources).
  std::mutex map_mu_;
  std::unordered_map<IpAddr, size_t, IpAddrHash> source_to_querier_;
  std::vector<bool> alive_;
  size_t next_ = 0;

  // Recovery ledger: failure counts and grave-yarded query accounting,
  // written by the supervisor thread, merged after all joins.
  std::mutex recover_mu_;
  EngineReport recover_report_;

  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> clamp_stall_ns_{0};

  std::thread thread_;
};

// ---------------------------------------------------------------------------
// QueryEngine: the controller (Reader + Postman).
// ---------------------------------------------------------------------------
QueryEngine::QueryEngine(EngineConfig config) : config_(std::move(config)) {}
QueryEngine::~QueryEngine() = default;

Result<EngineReport> QueryEngine::replay(const std::vector<TraceRecord>& trace,
                                         const ReplayClock* shared_clock) {
  if (trace.empty()) return Err("empty trace");
  if (config_.distributors == 0 || config_.queriers_per_distributor == 0)
    return Err("need at least one distributor and querier");
  if (shared_clock != nullptr && !shared_clock->started())
    return Err("shared clock not started");
  if (config_.shards > 1) return replay_sharded(trace, shared_clock);

  if (config_.resume != nullptr && config_.resume_shards != nullptr)
    return Err("resume and resume_shards are mutually exclusive");
  if (config_.resume_shards != nullptr)
    return Err("resume_shards requires shards > 1 (use resume)");

  const CheckpointState* resume = config_.resume;
  const bool checkpointing = config_.checkpointing();
  uint64_t fingerprint = 0;
  uint64_t total_queries = 0;
  if (checkpointing || resume != nullptr) {
    fingerprint = trace_fingerprint(trace);
    for (const auto& rec : trace)
      if (rec.direction == trace::Direction::Query) ++total_queries;
  }
  if (resume != nullptr && resume->trace_hash != fingerprint)
    return Err("checkpoint was taken against a different trace");

  // Per-source skip counts: how many query records the checkpoint already
  // put on the wire (mutator-dropped records never counted, so the skip
  // applies to mutator-surviving records only).
  std::unordered_map<IpAddr, uint64_t, IpAddrHash> skip;
  if (resume != nullptr) {
    for (const auto& [ip, n] : resume->sent) {
      auto addr = IpAddr::parse(ip);
      if (!addr.ok()) return Err("checkpoint: bad source address " + ip);
      skip[*addr] = n;
    }
  }

  // Time synchronization broadcast (§2.6): latch t̄₁ from the first query
  // and t₁ slightly in the future so worker startup cost doesn't make the
  // first queries late. On resume, re-anchor at the first record the
  // checkpoint hasn't sent, so the remaining schedule plays at original
  // pace instead of sprinting through the already-replayed prefix. A
  // shared clock (multi-controller replay) overrides.
  TimeNs anchor_ts = trace.front().timestamp;
  if (resume != nullptr) {
    auto remaining = skip;
    for (const auto& rec : trace) {
      if (rec.direction != trace::Direction::Query) continue;
      auto it = remaining.find(rec.src.addr);
      if (it != remaining.end() && it->second > 0) {
        --it->second;
        continue;
      }
      anchor_ts = rec.timestamp;
      break;
    }
  }
  ReplayClock own_clock;
  own_clock.start(anchor_ts, mono_now_ns() + kStartupLead);
  const ReplayClock& clock = shared_clock != nullptr ? *shared_clock : own_clock;

  // Stable storage for restored in-flight records: adopting queriers write
  // outcomes through pointers into this vector, so it must never grow
  // after the pointers are handed out.
  std::vector<SendRecord> adopted_records;
  adopted_records.reserve(resume != nullptr ? resume->pending.size() : 0);

  std::vector<std::unique_ptr<Distributor>> distributors;
  for (size_t i = 0; i < config_.distributors; ++i) {
    distributors.push_back(std::make_unique<Distributor>(
        static_cast<uint32_t>(i * config_.queriers_per_distributor),
        config_.queriers_per_distributor, config_, clock));
  }

  auto distributor_for = [&](const IpAddr& source) {
    auto it = source_to_distributor_.find(source);
    if (it != source_to_distributor_.end()) return it->second;
    size_t idx = next_distributor_++ % distributors.size();
    source_to_distributor_.emplace(source, idx);
    return idx;
  };

  std::atomic<uint64_t> mutator_dropped{0};

  // Supervision and the checkpoint ticker share one background thread.
  Supervisor supervisor(Supervisor::Config{
      config_.supervision_interval, config_.heartbeat_timeout,
      config_.checkpoint_interval});
  auto gather_state = [&] {
    CheckpointState st;
    st.trace_hash = fingerprint;
    st.trace_queries = total_queries;
    if (resume != nullptr) {
      // Cumulative across restores: the resumed base, overwritten by
      // whatever this incarnation's queriers have touched since.
      st.partial = resume->partial;
      st.streams = resume->streams;
      st.sent = resume->sent;
    }
    st.partial.mutator_dropped +=
        mutator_dropped.load(std::memory_order_relaxed);
    for (auto& d : distributors) d->gather(st);
    return st;
  };
  if (config_.supervise) {
    for (size_t i = 0; i < distributors.size(); ++i)
      distributors[i]->register_watches(supervisor, i);
  }
  if (checkpointing) {
    supervisor.set_checkpoint([&] {
      CheckpointState st = gather_state();
      if (!config_.checkpoint_path.empty()) {
        auto saved = save_checkpoint(config_.checkpoint_path, st);
        if (!saved.ok())
          LDP_WARN("replay", "checkpoint failed: " << saved.error().message);
      }
      if (config_.checkpoint_sink) config_.checkpoint_sink(st);
    });
  }
  if (config_.supervise || checkpointing) supervisor.start();

  // Restored in-flight queries are adopted before dispatch, so their
  // sources' sticky assignment is decided by the query that was first on
  // the wire.
  uint64_t restore_failures = 0;
  if (resume != nullptr) {
    for (const auto& cp : resume->pending) {
      adopted_records.push_back(cp.record);
      SendRecord& rec = adopted_records.back();
      rec.send_time = 0;  // sentinel: re-stamped when the adopter resends
      rec.latency = -1;
      rec.outcome = QueryOutcome::Pending;
      PendingQuery pq;
      pq.dns_id = cp.payload.size() >= 2
                      ? static_cast<uint16_t>(cp.payload[0] << 8 |
                                              cp.payload[1])
                      : 0;
      pq.retries_used = cp.retries_used;
      pq.transport = cp.transport;
      pq.source = cp.record.source;
      pq.extern_rec = &rec;
      pq.payload = cp.payload;
      size_t idx = distributor_for(pq.source);
      if (!distributors[idx]->adopt_restored(std::move(pq))) {
        rec.outcome = QueryOutcome::Errored;
        ++restore_failures;
      }
    }
  }

  // The Postman: dispatch records, same-source sticky across distributors,
  // mutating live when configured, skipping what the checkpoint already
  // replayed.
  for (const auto& rec : trace) {
    if (rec.direction != trace::Direction::Query) continue;
    auto sk = skip.find(rec.src.addr);
    bool skipping = sk != skip.end() && sk->second > 0;
    TraceRecord record = rec;
    if (config_.live_mutator != nullptr) {
      auto verdict = config_.live_mutator->apply(record);
      if (!verdict.ok() || *verdict == mutate::Verdict::Drop) {
        // Pre-cut drops are already inside the checkpoint's counter.
        if (!skipping) mutator_dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    if (skipping) {
      --sk->second;
      continue;
    }
    size_t idx = distributor_for(record.src.addr);
    distributors[idx]->submit(std::move(record));
  }
  for (auto& d : distributors) d->finish();

  // Shutdown order matters. The supervisor stays alive across the joins:
  // a querier parked by a stall is only ever released through the
  // supervisor's reap→recover→release handshake, so stopping it first
  // would deadlock the join (parking is gated on supervision, so with it
  // off nothing ever parks and the joins are trivially safe). And every
  // querier must be joined BEFORE any report is merged — sibling adopters
  // write through extern pointers into each other's send vectors until
  // they exit, and merging moves those vectors.
  for (auto& d : distributors) d->join_all();
  supervisor.stop();

  EngineReport merged;
  merged.mutator_dropped = mutator_dropped.load(std::memory_order_relaxed);
  merged.replay_start = clock.real_origin();
  for (auto& d : distributors) merged.merge_from(d->collect());

  // Restored records that never resolved (adopter shut down first, or the
  // adoption itself failed) expire with accounting.
  for (auto& rec : adopted_records) {
    if (rec.outcome == QueryOutcome::Pending) {
      rec.outcome = QueryOutcome::Errored;
      ++merged.lifecycle.expired;
    }
  }
  merged.lifecycle.expired += restore_failures;
  merged.sends.insert(merged.sends.end(), adopted_records.begin(),
                      adopted_records.end());
  if (resume != nullptr) {
    EngineReport base = resume->partial;
    merged.merge_from(std::move(base));
  }

  // Final quiescent checkpoint: a completed replay's file resumes into a
  // no-op (and the kill-and-resume smoke path reads its counters).
  if (checkpointing) {
    CheckpointState st = gather_state();
    if (!config_.checkpoint_path.empty()) {
      auto saved = save_checkpoint(config_.checkpoint_path, st);
      if (!saved.ok())
        LDP_WARN("replay", "final checkpoint failed: " << saved.error().message);
    }
    if (config_.checkpoint_sink) config_.checkpoint_sink(st);
  }

  distributors.clear();
  source_to_distributor_.clear();
  next_distributor_ = 0;
  return merged;
}

Result<EngineReport> QueryEngine::replay_sharded(
    const std::vector<TraceRecord>& trace, const ReplayClock* shared_clock) {
  // Checkpoints shard alongside the queriers: each shard engine snapshots
  // its own slice to `<path>.shard<N>` and resumes from its own state, so
  // the single-shard consistency argument holds per slice. Whole-trace
  // resume state is carried per shard (resume_shards), never as one file.
  if (config_.resume != nullptr)
    return Err("sharded resume takes per-shard states (resume_shards), not a single checkpoint");
  if (config_.resume_shards != nullptr &&
      config_.resume_shards->size() != config_.shards)
    return Err("resume_shards size does not match the shard count");
  if (config_.checkpoint_sink)
    return Err("checkpoint_sink is incompatible with shards > 1");

  // The live mutator is applied here, on the one controller thread, before
  // partitioning — exactly the single-shard Postman order — so stateful
  // user closures never see concurrent calls and drop accounting stays
  // centralized. Sticky partition by source in first-appearance order
  // (deterministic and balanced, the same policy distributor_for uses), so
  // a source's queries — and therefore its connections and its per-source
  // fault stream — live on exactly one shard.
  std::vector<std::vector<TraceRecord>> slices(config_.shards);
  std::unordered_map<IpAddr, size_t, IpAddrHash> source_to_shard;
  uint64_t mutator_dropped = 0;
  for (const auto& rec : trace) {
    if (rec.direction != trace::Direction::Query) continue;
    TraceRecord record = rec;
    if (config_.live_mutator != nullptr) {
      auto verdict = config_.live_mutator->apply(record);
      if (!verdict.ok() || *verdict == mutate::Verdict::Drop) {
        ++mutator_dropped;
        continue;
      }
    }
    auto [it, fresh] =
        source_to_shard.emplace(record.src.addr, source_to_shard.size() % config_.shards);
    slices[it->second].push_back(std::move(record));
    (void)fresh;
  }

  // One synchronization point for every shard (t̄₁ from the whole trace),
  // so the merged send schedule matches an unsharded replay. A sharded
  // resume re-anchors at the globally earliest record no shard has sent —
  // the shared clock overrides the sub-engines' own re-anchoring, so the
  // fast-forward has to happen here.
  TimeNs anchor_ts = trace.front().timestamp;
  if (config_.resume_shards != nullptr) {
    bool found = false;
    for (size_t i = 0; i < config_.shards; ++i) {
      const CheckpointState& st = (*config_.resume_shards)[i];
      std::unordered_map<IpAddr, uint64_t, IpAddrHash> remaining;
      for (const auto& [ip, n] : st.sent) {
        auto addr = IpAddr::parse(ip);
        if (!addr.ok()) return Err("shard checkpoint: bad source address " + ip);
        remaining[*addr] = n;
      }
      for (const auto& rec : slices[i]) {
        auto it = remaining.find(rec.src.addr);
        if (it != remaining.end() && it->second > 0) {
          --it->second;
          continue;
        }
        if (!found || rec.timestamp < anchor_ts) anchor_ts = rec.timestamp;
        found = true;
        break;
      }
    }
  }
  ReplayClock own_clock;
  own_clock.start(anchor_ts, mono_now_ns() + kStartupLead);
  const ReplayClock& clock = shared_clock != nullptr ? *shared_clock : own_clock;

  // One full worker pipeline per shard, each a plain single-shard engine
  // (mutation already applied above) with its own checkpoint file and its
  // own resume state. Results land in per-shard slots and merge after the
  // joins.
  EngineConfig sub_cfg = config_;
  sub_cfg.shards = 1;
  sub_cfg.live_mutator = nullptr;
  sub_cfg.resume_shards = nullptr;
  std::vector<std::optional<Result<EngineReport>>> slots(config_.shards);
  std::vector<std::unique_ptr<QueryEngine>> engines;
  std::vector<std::thread> threads;
  engines.reserve(config_.shards);
  threads.reserve(config_.shards);
  for (size_t i = 0; i < config_.shards; ++i) {
    EngineConfig cfg = sub_cfg;
    if (!config_.checkpoint_path.empty())
      cfg.checkpoint_path = shard_checkpoint_path(config_.checkpoint_path, i);
    // trace_hash 0 marks a shard that died before its first snapshot: it
    // replays its slice from the start (re-sent queries are counted once,
    // same contract as post-snapshot sends in a single-shard resume).
    if (config_.resume_shards != nullptr &&
        (*config_.resume_shards)[i].trace_hash != 0)
      cfg.resume = &(*config_.resume_shards)[i];
    engines.push_back(std::make_unique<QueryEngine>(std::move(cfg)));
  }
  for (size_t i = 0; i < config_.shards; ++i) {
    threads.emplace_back([&clock, &slices, &slots, &engines, i] {
      if (slices[i].empty()) {
        slots[i] = EngineReport{};
        return;
      }
      slots[i] = engines[i]->replay(slices[i], &clock);
    });
  }
  for (auto& t : threads) t.join();

  EngineReport merged;
  merged.replay_start = clock.real_origin();
  merged.mutator_dropped = mutator_dropped;
  for (auto& slot : slots) {
    if (!slot.has_value()) return Err("shard produced no report");
    if (!slot->ok()) return Err(slot->error().message);
    merged.merge_from(std::move(slot->value()));
  }
  return merged;
}

}  // namespace ldp::replay
