#include "replay/pending.hpp"

#include <algorithm>

namespace ldp::replay {

bool PendingTable::insert(PendingQuery q) {
  auto& fifo = by_id_[q.dns_id];
  bool collision = !fifo.empty();
  fifo.push_back(q.key);
  heap_.push(HeapItem{q.deadline, q.key});
  entries_.emplace(q.key, std::move(q));
  return collision;
}

std::optional<PendingQuery> PendingTable::match(uint16_t dns_id) {
  auto fit = by_id_.find(dns_id);
  if (fit == by_id_.end()) return std::nullopt;
  uint64_t key = fit->second.front();
  fit->second.pop_front();
  if (fit->second.empty()) by_id_.erase(fit);
  auto eit = entries_.find(key);
  PendingQuery q = std::move(eit->second);
  entries_.erase(eit);
  // The heap item for `key` goes stale and is pruned lazily.
  return q;
}

std::vector<PendingQuery> PendingTable::take_due(TimeNs now) {
  std::vector<PendingQuery> due;
  while (true) {
    prune_heap();
    if (heap_.empty() || heap_.top().deadline > now) break;
    uint64_t key = heap_.top().key;
    heap_.pop();
    auto eit = entries_.find(key);
    erase_from_id_fifo(eit->second.dns_id, key);
    due.push_back(std::move(eit->second));
    entries_.erase(eit);
  }
  return due;
}

std::optional<TimeNs> PendingTable::next_deadline() {
  prune_heap();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().deadline;
}

std::vector<PendingQuery> PendingTable::drain() {
  std::vector<PendingQuery> all;
  all.reserve(entries_.size());
  for (auto& [key, q] : entries_) all.push_back(std::move(q));
  entries_.clear();
  by_id_.clear();
  heap_ = {};
  // Callers resend in original send order (backlog replay on reconnect).
  std::sort(all.begin(), all.end(),
            [](const PendingQuery& a, const PendingQuery& b) { return a.key < b.key; });
  return all;
}

void PendingTable::prune_heap() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.top();
    auto eit = entries_.find(top.key);
    if (eit != entries_.end() && eit->second.deadline == top.deadline) return;
    heap_.pop();
  }
}

void PendingTable::erase_from_id_fifo(uint16_t dns_id, uint64_t key) {
  auto fit = by_id_.find(dns_id);
  if (fit == by_id_.end()) return;
  auto& fifo = fit->second;
  auto pos = std::find(fifo.begin(), fifo.end(), key);
  if (pos != fifo.end()) fifo.erase(pos);
  if (fifo.empty()) by_id_.erase(fit);
}

}  // namespace ldp::replay
