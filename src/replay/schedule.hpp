// Replay timing math (§2.6 "Correct timing for replayed queries").
//
// The controller broadcasts a time-synchronization point when the first
// query is read; each querier latches the trace time t̄₁ and real time t₁ at
// that moment. For query i:
//     Δt̄ᵢ = t̄ᵢ − t̄₁   (ideal offset into the trace)
//     Δtᵢ = tᵢ − t₁   (real time already consumed by input processing)
//     ΔTᵢ = Δt̄ᵢ − Δtᵢ (timer delay that removes the accumulated input lag)
// If the input falls behind (ΔTᵢ ≤ 0) the query is sent immediately.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/clock.hpp"

namespace ldp::replay {

/// Capped exponential backoff for retransmits: base · 2^(attempt−1), never
/// exceeding `cap`. attempt is 1-based (the first retry waits `base`).
inline TimeNs retry_backoff(TimeNs base, uint32_t attempt, TimeNs cap) {
  if (base <= 0) return cap;
  TimeNs delay = base;
  for (uint32_t i = 1; i < attempt && delay < cap; ++i) delay *= 2;
  return std::min(delay, cap);
}

class ReplayClock {
 public:
  /// Latch the synchronization point (t̄₁, t₁).
  void start(TimeNs trace_time, TimeNs real_time) {
    trace_origin_ = trace_time;
    real_origin_ = real_time;
    started_ = true;
  }

  bool started() const { return started_; }
  TimeNs trace_origin() const { return trace_origin_; }
  TimeNs real_origin() const { return real_origin_; }

  /// ΔTᵢ: how long to wait from `real_time` before sending the query
  /// stamped `trace_time`. Zero or negative means "send now".
  TimeNs delay_for(TimeNs trace_time, TimeNs real_time) const {
    TimeNs trace_offset = trace_time - trace_origin_;
    TimeNs real_offset = real_time - real_origin_;
    return trace_offset - real_offset;
  }

  /// Absolute monotonic deadline for the query stamped `trace_time`.
  TimeNs deadline_for(TimeNs trace_time) const {
    return real_origin_ + (trace_time - trace_origin_);
  }

 private:
  TimeNs trace_origin_ = 0;
  TimeNs real_origin_ = 0;
  bool started_ = false;
};

}  // namespace ldp::replay
