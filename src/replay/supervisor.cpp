#include "replay/supervisor.hpp"

#include <chrono>

#include "util/log.hpp"

namespace ldp::replay {

void Supervisor::watch(std::string name, Heartbeat* heartbeat,
                       std::function<void()> on_failure) {
  watches_.push_back(Watch{std::move(name), heartbeat, std::move(on_failure)});
}

void Supervisor::start() {
  thread_ = std::thread([this] { run(); });
}

void Supervisor::stop() {
  {
    std::lock_guard lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Supervisor::run() {
  TimeNs last_checkpoint = mono_now_ns();
  std::unique_lock lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::nanoseconds(config_.interval),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    // Callbacks may take their time (reap handshake, checkpoint I/O);
    // release the lock so stop() never queues behind them.
    lock.unlock();
    TimeNs now = mono_now_ns();
    for (auto& w : watches_) {
      if (w.fired || w.heartbeat->done()) continue;
      if (now - w.heartbeat->last_beat() < config_.heartbeat_timeout) continue;
      w.fired = true;
      failures_.fetch_add(1, std::memory_order_relaxed);
      LDP_WARN("supervisor",
               w.name << " heartbeat stale for "
                      << (now - w.heartbeat->last_beat()) / kMilli
                      << "ms, recovering");
      if (w.on_failure) w.on_failure();
    }
    if (checkpoint_ && config_.checkpoint_interval > 0 &&
        now - last_checkpoint >= config_.checkpoint_interval) {
      last_checkpoint = now;
      checkpoint_();
    }
    lock.lock();
  }
}

}  // namespace ldp::replay
