// Figure 8: per-second query-rate difference between replayed and original
// B-Root trace, five trials.
//
// For each trial, replays the B-Root-like trace and compares the query
// rate in every 1-second window of the replay against the same window of
// the original, printing the CDF of the relative difference and the
// fraction of windows within ±0.1% (the paper: 95-99% of windows).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"

using namespace ldp;

int main() {
  auto bg = server::BackgroundServer::start(bench::root_wildcard_server());
  if (!bg.ok()) return 1;

  bench::print_header("Figure 8", "per-second query rate difference, 5 trials");

  const TimeNs kDuration = 15 * kSecond;
  auto trace = bench::broot16_trace(2000, kDuration, 5000, 88);

  RateCounter original(kSecond);
  TimeNs t0 = trace.front().timestamp;
  for (const auto& rec : trace) original.add(rec.timestamp - t0);
  auto orig_series = original.series();

  double median_rate = 0;
  {
    Sampler s;
    for (uint64_t v : orig_series) s.add(static_cast<double>(v));
    median_rate = s.quantile(0.5);
  }
  std::printf("  original median query rate: %.0f q/s (paper: 38k q/s full scale)\n",
              median_rate);

  for (int trial = 1; trial <= 5; ++trial) {
    replay::EngineConfig cfg;
    cfg.server = (*bg)->endpoint();
    cfg.drain_grace = kSecond / 2;
    replay::QueryEngine engine(cfg);
    auto report = engine.replay(trace);
    if (!report.ok()) {
      std::fprintf(stderr, "trial %d failed: %s\n", trial,
                   report.error().message.c_str());
      continue;
    }

    RateCounter replayed(kSecond);
    for (const auto& sr : report->sends)
      replayed.add(sr.send_time - report->replay_start);
    auto replay_series = replayed.series();

    Sampler diff_pct;
    size_t windows = std::min(orig_series.size(), replay_series.size());
    size_t within_01 = 0, counted = 0;
    // Skip the first and last windows (partial by construction).
    for (size_t i = 1; i + 1 < windows; ++i) {
      if (orig_series[i] == 0) continue;
      double d = (static_cast<double>(replay_series[i]) -
                  static_cast<double>(orig_series[i])) /
                 static_cast<double>(orig_series[i]) * 100.0;
      diff_pct.add(d);
      ++counted;
      if (std::abs(d) <= 0.1) ++within_01;
    }
    auto sum = diff_pct.summary();
    std::printf(
        "  trial %d: windows %zu  within +/-0.1%%: %5.1f%%  diff%% median %+.3f"
        "  q1 %+.3f  q3 %+.3f  min %+.3f  max %+.3f\n",
        trial, counted, 100.0 * static_cast<double>(within_01) / counted, sum.median,
        sum.q1, sum.q3, sum.min, sum.max);
    bench::print_loss_counters(*report);
  }

  std::printf(
      "\n  Paper reference: 4 trials with 98-99%% and 1 trial with 95%% of windows\n"
      "  within +/-0.1%% rate difference.\n");
  return 0;
}
