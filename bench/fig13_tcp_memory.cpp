// Figure 13: server memory and connection footprint over time with all
// queries over TCP, for idle timeouts 5–40 s, minimal RTT (B-Root-17a).
//
// Three panels, as in the paper: (a) memory consumption, (b) established
// TCP connections, (c) connections in TIME_WAIT — one line per timeout,
// sampled each minute. Claims under test: all three rise with the timeout;
// resource usage reaches steady state within ~5 minutes and stays flat;
// at the 20 s timeout roughly one third of connections are established and
// two thirds TIME_WAIT.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "simnet/replay_sim.hpp"

using namespace ldp;

namespace {
constexpr TimeNs kTraceDuration = 10 * 60 * kSecond;  // paper: 60 min

void run_panel(Transport transport, const std::vector<trace::TraceRecord>& trace,
               const server::AuthServer& server) {
  std::vector<TimeNs> timeouts;
  for (TimeNs t = 5 * kSecond; t <= 40 * kSecond; t += 5 * kSecond)
    timeouts.push_back(t);

  std::vector<simnet::SimReplayResult> results;
  for (TimeNs timeout : timeouts) {
    simnet::SimReplayConfig cfg;
    cfg.rtt = kMilli / 2;
    cfg.idle_timeout = timeout;
    cfg.sample_interval = 60 * kSecond;
    results.push_back(simnet::simulate_replay(trace, server, cfg));
  }

  auto print_series = [&](const char* title, auto getter) {
    std::printf("\n  (%s) by minute, one column per timeout:\n", title);
    std::printf("    min ");
    for (TimeNs t : timeouts) std::printf(" %8llds", static_cast<long long>(t / kSecond));
    std::printf("\n");
    size_t samples = results[0].samples.size();
    for (size_t i = 0; i < samples; ++i) {
      std::printf("    %3zu ", i + 1);
      for (const auto& r : results) {
        std::printf(" %9s", getter(r.samples[i]).c_str());
      }
      std::printf("\n");
    }
  };

  char buf[32];
  print_series("memory consumption", [&buf](const simnet::MetricsSample& s) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(s.memory_bytes) / (1ull << 30));
    return std::string(buf);
  });
  print_series("established connections", [&buf](const simnet::MetricsSample& s) {
    std::snprintf(buf, sizeof(buf), "%zu", s.established);
    return std::string(buf);
  });
  print_series("TIME_WAIT connections", [&buf](const simnet::MetricsSample& s) {
    std::snprintf(buf, sizeof(buf), "%zu", s.time_wait);
    return std::string(buf);
  });

  // The 20 s operating point the paper quotes (15 GB, 180k connections,
  // one third established).
  const auto& at20 = results[3];
  auto mem = at20.steady_memory_gb(3);
  const auto& last = at20.samples.back();
  double est_frac = last.established + last.time_wait > 0
                        ? static_cast<double>(last.established) /
                              static_cast<double>(last.established + last.time_wait)
                        : 0;
  std::printf(
      "\n  at 20s timeout (%s): steady memory median %.2f GB;"
      " established/(established+TIME_WAIT) = %.2f\n",
      transport_name(transport), mem.median, est_frac);
}
}  // namespace

int main() {
  bench::print_header("Figure 13",
                      "memory and connections over time, all queries over TCP");

  auto original = bench::broot16_trace(4000, kTraceDuration, 25000, 13);
  auto all_tcp = bench::force_transport(original, Transport::Tcp);
  auto server = bench::root_wildcard_server();

  run_panel(Transport::Tcp, all_tcp, server);

  // Baseline: the original 3%-TCP trace at 20 s timeout (the blue bottom
  // line of Figure 13a, ~2 GB).
  simnet::SimReplayConfig cfg;
  cfg.rtt = kMilli / 2;
  cfg.idle_timeout = 20 * kSecond;
  cfg.sample_interval = 60 * kSecond;
  auto baseline = simnet::simulate_replay(original, server, cfg);
  std::printf("  baseline original trace (3%% TCP), 20s timeout: memory median %.2f GB\n",
              baseline.steady_memory_gb(3).median);

  std::printf(
      "\n  Paper reference: ~15 GB at 20 s timeout with ~60k established and\n"
      "  ~120k TIME_WAIT connections (UDP baseline 2 GB); curves flat after\n"
      "  ~5 minutes. Scaled client population -> proportionally fewer\n"
      "  connections here; shape and established:TIME_WAIT ratio carry over.\n");
  return 0;
}
