// Micro-benchmarks of the wire-format hot paths: message encode/decode,
// name compression, zone lookup, and the §2.6 scheduler arithmetic. These
// bound the per-query CPU cost of both the replay engine and the server.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "dns/message.hpp"
#include "replay/schedule.hpp"

using namespace ldp;

namespace {

dns::Message sample_response() {
  dns::Message q = dns::Message::make_query(1234, *dns::Name::parse("www.example.com"),
                                            dns::RRType::A);
  dns::Edns e;
  e.udp_payload_size = 4096;
  e.dnssec_ok = true;
  q.edns = e;
  dns::Message r = dns::Message::make_response(q);
  for (int i = 0; i < 4; ++i) {
    r.answers.push_back(dns::ResourceRecord{
        *dns::Name::parse("www.example.com"), dns::RRType::A, dns::RRClass::IN, 300,
        dns::Rdata{dns::AData{Ip4{192, 0, 2, static_cast<uint8_t>(i)}}}});
  }
  for (int i = 0; i < 2; ++i) {
    r.authorities.push_back(dns::ResourceRecord{
        *dns::Name::parse("example.com"), dns::RRType::NS, dns::RRClass::IN, 86400,
        dns::Rdata{dns::NameData{*dns::Name::parse("ns" + std::to_string(i) +
                                                   ".example.com")}}});
  }
  return r;
}

void BM_MessageEncode(benchmark::State& state) {
  auto msg = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.to_wire());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageEncode);

void BM_MessageDecode(benchmark::State& state) {
  auto wire = sample_response().to_wire();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::from_wire(wire));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_MessageDecode);

void BM_QueryEncodeDecodeRoundTrip(benchmark::State& state) {
  // The replay hot path: query out, response in.
  auto query = dns::Message::make_query(7, *dns::Name::parse("abcdef.com"),
                                        dns::RRType::A, false);
  for (auto _ : state) {
    auto wire = query.to_wire();
    benchmark::DoNotOptimize(dns::Message::from_wire(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryEncodeDecodeRoundTrip);

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Name::parse("a.very.deep.chain.of.labels.example.com"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameParse);

void BM_ZoneLookup(benchmark::State& state) {
  auto server = bench::root_wildcard_server();
  dns::Message q = dns::Message::make_query(5, *dns::Name::parse("foo.example.com"),
                                            dns::RRType::A, false);
  IpAddr client{Ip4{10, 0, 0, 9}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.answer(q, client));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZoneLookup);

void BM_SchedulerDelayMath(benchmark::State& state) {
  replay::ReplayClock clock;
  clock.start(1000 * kSecond, 2000 * kSecond);
  TimeNs trace_t = 1000 * kSecond;
  TimeNs real_t = 2000 * kSecond;
  for (auto _ : state) {
    trace_t += 27 * kMicro;  // B-Root mean inter-arrival
    real_t += 26 * kMicro;
    benchmark::DoNotOptimize(clock.delay_for(trace_t, real_t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerDelayMath);

void BM_DnssecSigningOverhead(benchmark::State& state) {
  // Answer cost with RRSIG synthesis (zsk bits as the argument).
  server::ServerConfig cfg;
  cfg.dnssec.zone_signed = true;
  cfg.dnssec.zsk_bits = static_cast<size_t>(state.range(0));
  auto server = bench::root_wildcard_server(cfg);
  dns::Message q = dns::Message::make_query(6, *dns::Name::parse("bar.example.com"),
                                            dns::RRType::A, false);
  dns::Edns e;
  e.udp_payload_size = 4096;
  e.dnssec_ok = true;
  q.edns = e;
  IpAddr client{Ip4{10, 0, 0, 9}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.answer(q, client));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnssecSigningOverhead)->Arg(1024)->Arg(2048)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
