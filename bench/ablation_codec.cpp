// Micro-benchmarks of the wire-format hot paths: message encode/decode,
// name compression, zone lookup, and the §2.6 scheduler arithmetic. These
// bound the per-query CPU cost of both the replay engine and the server.
//
// The hot-path ablations at the end compare each optimized path against the
// code it replaced — allocating name decode vs in-place, full answer
// pipeline vs template-cache hit, one-syscall-per-datagram UDP vs
// sendmmsg batches — and record before/after numbers into
// BENCH_ablation_codec.json (checked in; EXPERIMENTS.md has the re-record
// recipe).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "dns/message.hpp"
#include "net/socket.hpp"
#include "replay/schedule.hpp"
#include "server/response_cache.hpp"

using namespace ldp;

namespace {

dns::Message sample_response() {
  dns::Message q = dns::Message::make_query(1234, *dns::Name::parse("www.example.com"),
                                            dns::RRType::A);
  dns::Edns e;
  e.udp_payload_size = 4096;
  e.dnssec_ok = true;
  q.edns = e;
  dns::Message r = dns::Message::make_response(q);
  for (int i = 0; i < 4; ++i) {
    r.answers.push_back(dns::ResourceRecord{
        *dns::Name::parse("www.example.com"), dns::RRType::A, dns::RRClass::IN, 300,
        dns::Rdata{dns::AData{Ip4{192, 0, 2, static_cast<uint8_t>(i)}}}});
  }
  for (int i = 0; i < 2; ++i) {
    r.authorities.push_back(dns::ResourceRecord{
        *dns::Name::parse("example.com"), dns::RRType::NS, dns::RRClass::IN, 86400,
        dns::Rdata{dns::NameData{*dns::Name::parse("ns" + std::to_string(i) +
                                                   ".example.com")}}});
  }
  return r;
}

void BM_MessageEncode(benchmark::State& state) {
  auto msg = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.to_wire());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageEncode);

void BM_MessageDecode(benchmark::State& state) {
  auto wire = sample_response().to_wire();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::from_wire(wire));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_MessageDecode);

void BM_QueryEncodeDecodeRoundTrip(benchmark::State& state) {
  // The replay hot path: query out, response in.
  auto query = dns::Message::make_query(7, *dns::Name::parse("abcdef.com"),
                                        dns::RRType::A, false);
  for (auto _ : state) {
    auto wire = query.to_wire();
    benchmark::DoNotOptimize(dns::Message::from_wire(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryEncodeDecodeRoundTrip);

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Name::parse("a.very.deep.chain.of.labels.example.com"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameParse);

// Wire of a response whose answer-section names are compression pointers
// back into the question — the shape the server parses per query.
std::vector<uint8_t> compressed_wire() { return sample_response().to_wire(); }

void BM_NameFromWire(benchmark::State& state) {
  // Before: allocating decode (one std::string per label into a Name).
  auto wire = compressed_wire();
  for (auto _ : state) {
    ByteReader rd(wire);
    (void)rd.skip(12);
    benchmark::DoNotOptimize(dns::Name::from_wire(rd));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameFromWire);

void BM_NameDecodeInPlace(benchmark::State& state) {
  // After: in-place decode appending to a caller-owned reused buffer.
  auto wire = compressed_wire();
  std::string buf;
  for (auto _ : state) {
    ByteReader rd(wire);
    (void)rd.skip(12);
    buf.clear();
    benchmark::DoNotOptimize(dns::decode_name_wire(rd, buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameDecodeInPlace);

void BM_ZoneLookup(benchmark::State& state) {
  auto server = bench::root_wildcard_server();
  dns::Message q = dns::Message::make_query(5, *dns::Name::parse("foo.example.com"),
                                            dns::RRType::A, false);
  IpAddr client{Ip4{10, 0, 0, 9}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.answer(q, client));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZoneLookup);

void BM_AnswerWireSlowPath(benchmark::State& state) {
  // Before: full parse -> lookup -> render pipeline per query.
  auto server = bench::root_wildcard_server();
  auto wire = dns::Message::make_query(5, *dns::Name::parse("foo.example.com"),
                                       dns::RRType::A)
                  .to_wire();
  IpAddr client{Ip4{10, 0, 0, 9}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.answer_wire(wire, client, 512));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnswerWireSlowPath);

void BM_ResponseCacheHit(benchmark::State& state) {
  // After: template-cache hit (key build + ID/RD patch into reused buffer).
  auto server = bench::root_wildcard_server();
  auto wire = dns::Message::make_query(5, *dns::Name::parse("foo.example.com"),
                                       dns::RRType::A)
                  .to_wire();
  IpAddr client{Ip4{10, 0, 0, 9}};
  server::ResponseCache cache(16);
  cache.sync_revision(1);
  std::vector<uint8_t> reply;
  bool nxdomain = false;
  if (cache.probe(wire, 512, reply, nxdomain) == server::ResponseCache::Outcome::Miss) {
    auto rendered = server.answer_wire(wire, client, 512);
    if (rendered.has_value()) cache.insert(*rendered);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.probe(wire, 512, reply, nxdomain));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResponseCacheHit);

void BM_SchedulerDelayMath(benchmark::State& state) {
  replay::ReplayClock clock;
  clock.start(1000 * kSecond, 2000 * kSecond);
  TimeNs trace_t = 1000 * kSecond;
  TimeNs real_t = 2000 * kSecond;
  for (auto _ : state) {
    trace_t += 27 * kMicro;  // B-Root mean inter-arrival
    real_t += 26 * kMicro;
    benchmark::DoNotOptimize(clock.delay_for(trace_t, real_t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerDelayMath);

void BM_DnssecSigningOverhead(benchmark::State& state) {
  // Answer cost with RRSIG synthesis (zsk bits as the argument).
  server::ServerConfig cfg;
  cfg.dnssec.zone_signed = true;
  cfg.dnssec.zsk_bits = static_cast<size_t>(state.range(0));
  auto server = bench::root_wildcard_server(cfg);
  dns::Message q = dns::Message::make_query(6, *dns::Name::parse("bar.example.com"),
                                            dns::RRType::A, false);
  dns::Edns e;
  e.udp_payload_size = 4096;
  e.dnssec_ok = true;
  q.edns = e;
  IpAddr client{Ip4{10, 0, 0, 9}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.answer(q, client));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnssecSigningOverhead)->Arg(1024)->Arg(2048)->Arg(4096);

// ---------------------------------------------------------------------------
// Self-timed before/after ablations recorded into BENCH_ablation_codec.json.
// (Self-timed rather than scraped from the benchmark reporter so the JSON
// stays a deterministic three-row artifact.)

template <typename Fn>
double ns_per_op(size_t iters, Fn&& fn) {
  for (size_t i = 0; i < iters / 10 + 1; ++i) fn();  // warm-up
  TimeNs t0 = mono_now_ns();
  for (size_t i = 0; i < iters; ++i) fn();
  return static_cast<double>(mono_now_ns() - t0) / static_cast<double>(iters);
}

bench::JsonObject ablation_row(const char* before_name, double before_ns,
                               const char* after_name, double after_ns) {
  bench::JsonObject row;
  row.field("before", std::string(before_name))
      .field("before_ns_per_op", before_ns)
      .field("after", std::string(after_name))
      .field("after_ns_per_op", after_ns)
      .field("speedup", after_ns > 0 ? before_ns / after_ns : 0.0);
  return row;
}

bench::JsonObject ablate_name_decode() {
  auto wire = compressed_wire();
  double before = ns_per_op(400000, [&] {
    ByteReader rd(wire);
    (void)rd.skip(12);
    benchmark::DoNotOptimize(dns::Name::from_wire(rd));
  });
  std::string buf;
  double after = ns_per_op(400000, [&] {
    ByteReader rd(wire);
    (void)rd.skip(12);
    buf.clear();
    benchmark::DoNotOptimize(dns::decode_name_wire(rd, buf));
  });
  return ablation_row("Name::from_wire (per-label alloc)", before,
                      "decode_name_wire (in-place)", after);
}

bench::JsonObject ablate_response_path() {
  auto server = bench::root_wildcard_server();
  auto wire = dns::Message::make_query(5, *dns::Name::parse("foo.example.com"),
                                       dns::RRType::A)
                  .to_wire();
  IpAddr client{Ip4{10, 0, 0, 9}};
  double before = ns_per_op(100000, [&] {
    benchmark::DoNotOptimize(server.answer_wire(wire, client, 512));
  });
  server::ResponseCache cache(16);
  cache.sync_revision(1);
  std::vector<uint8_t> reply;
  bool nxdomain = false;
  if (cache.probe(wire, 512, reply, nxdomain) == server::ResponseCache::Outcome::Miss) {
    auto rendered = server.answer_wire(wire, client, 512);
    if (rendered.has_value()) cache.insert(*rendered);
  }
  double after = ns_per_op(100000, [&] {
    benchmark::DoNotOptimize(cache.probe(wire, 512, reply, nxdomain));
  });
  return ablation_row("answer_wire (parse+lookup+render)", before,
                      "template-cache hit (ID/RD patch)", after);
}

bench::JsonObject ablate_udp_send() {
  // Sender/receiver pair on loopback; the receiver drains after every
  // burst so kernel buffers never fill and both paths pay the same drain.
  auto tx = net::UdpSocket::create();
  auto rx = net::UdpSocket::bind(Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 0});
  if (!tx.ok() || !rx.ok()) return bench::JsonObject{};
  Endpoint dst = *rx->local_endpoint();
  std::vector<uint8_t> payload(64, 0xab);
  const size_t kBurst = net::UdpSocket::kBatchSize;

  net::IoCounters c0 = net::io_counters();
  double before = ns_per_op(2000, [&] {
    for (size_t i = 0; i < kBurst; ++i) (void)tx->send_to(dst, payload);
    while (true) {
      auto batch = rx->recv_batch();
      if (!batch.ok() || batch->empty()) break;
    }
  });
  net::IoCounters c1 = net::io_counters();
  std::vector<net::UdpSocket::OutDatagram> dgs(kBurst,
                                               net::UdpSocket::OutDatagram{dst, payload});
  double after = ns_per_op(2000, [&] {
    (void)tx->send_batch(dgs);
    while (true) {
      auto batch = rx->recv_batch();
      if (!batch.ok() || batch->empty()) break;
    }
  });
  net::IoCounters c2 = net::io_counters();

  double send_calls_before =
      static_cast<double>((c1.sendto_calls - c0.sendto_calls) +
                          (c1.sendmmsg_calls - c0.sendmmsg_calls)) /
      static_cast<double>(c1.datagrams_sent - c0.datagrams_sent);
  double send_calls_after =
      static_cast<double>((c2.sendto_calls - c1.sendto_calls) +
                          (c2.sendmmsg_calls - c1.sendmmsg_calls)) /
      static_cast<double>(c2.datagrams_sent - c1.datagrams_sent);

  bench::JsonObject row = ablation_row(
      "16x send_to (one syscall each)", before / static_cast<double>(kBurst),
      "send_batch of 16 (one sendmmsg)", after / static_cast<double>(kBurst));
  row.field("before_send_syscalls_per_datagram", send_calls_before)
      .field("after_send_syscalls_per_datagram", send_calls_after)
      .field("note", std::string("ns_per_op is per datagram incl. receiver drain"));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // A single trailing non-flag argument overrides the JSON output path.
  const char* json_path = argc > 1 ? argv[1] : "BENCH_ablation_codec.json";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::JsonObject report;
  report.field("bench", std::string("ablation_codec"))
      .field("name_decode", ablate_name_decode())
      .field("response_path", ablate_response_path())
      .field("udp_send", ablate_udp_send());
  if (!bench::write_json_file(json_path, report)) {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  std::printf("\nrecorded: %s\n", json_path);
  return 0;
}
