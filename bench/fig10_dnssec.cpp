// Figure 10: bandwidth of root responses under different DNSSEC ZSK sizes
// and DO-bit fractions (§5.1).
//
// Six groups, as in the figure: {72.3% DO (mid-2016), 100% DO} ×
// {1024-bit ZSK, 2048-bit ZSK, 2048-bit during rollover}. Each group
// replays the same B-Root-16-like trace (mutated for the DO fraction)
// against the signed root server and reports the response-bandwidth
// distribution over 10-second windows. The headline claims: 1024→2048-bit
// ZSK adds ~32% response traffic; 72.3%→100% DO at 2048-bit adds ~31%.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "simnet/replay_sim.hpp"

using namespace ldp;

namespace {

double run_group(const char* label, const std::vector<trace::TraceRecord>& trace,
                 size_t zsk_bits, bool rollover) {
  server::ServerConfig cfg;
  cfg.dnssec.zone_signed = true;
  cfg.dnssec.zsk_bits = zsk_bits;
  cfg.dnssec.rollover = rollover;
  auto server = bench::root_wildcard_server(cfg);

  simnet::SimReplayConfig sim_cfg;
  sim_cfg.rtt = kMilli;
  sim_cfg.sample_interval = 10 * kSecond;
  auto result = simnet::simulate_replay(trace, server, sim_cfg);

  Sampler mbps;
  for (const auto& s : result.samples) {
    mbps.add(static_cast<double>(s.response_bytes) * 8 /
             ns_to_sec(sim_cfg.sample_interval) / 1e6);
  }
  auto sum = mbps.summary();
  bench::print_summary_row(label, sum, "Mb/s");
  return sum.median;
}

}  // namespace

int main() {
  bench::print_header("Figure 10",
                      "response bandwidth vs ZSK size and DO fraction (B-Root-16)");

  auto base = bench::broot16_trace(3000, 120 * kSecond, 20000, 10);  // 72.3% DO

  mutate::MutatorPipeline all_do;
  all_do.enable_dnssec(4096);
  auto full_do = all_do.apply_all(base);

  std::printf("  72.3%% of queries with DO bit (mid-2016 mix):\n");
  double cur_1024 = run_group("ZSK 1024 normal", base, 1024, false);
  double cur_2048 = run_group("ZSK 2048 normal", base, 2048, false);
  run_group("ZSK 2048 rollover", base, 2048, true);

  std::printf("  All queries with DO bit:\n");
  run_group("ZSK 1024 normal", full_do, 1024, false);
  double all_2048 = run_group("ZSK 2048 normal", full_do, 2048, false);
  run_group("ZSK 2048 rollover", full_do, 2048, true);

  std::printf("\n  key ratios (median bandwidth):\n");
  std::printf("    1024 -> 2048-bit ZSK at 72.3%% DO: +%.0f%%  (paper: +32%%)\n",
              (cur_2048 / cur_1024 - 1) * 100);
  std::printf("    72.3%% -> 100%% DO at 2048-bit ZSK: +%.0f%%  (paper: +31%%)\n",
              (all_2048 / cur_2048 - 1) * 100);
  std::printf(
      "  Paper reference: 225 Mb/s at 72.3%% DO / 2048-bit; 296 Mb/s at 100%% DO\n"
      "  (absolute volume here is rate-scaled; ratios are the claim).\n");
  return 0;
}
