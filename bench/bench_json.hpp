// Minimal JSON emission for benches that record before/after numbers into
// checked-in BENCH_*.json files (the hot-path acceptance artifacts). Not a
// general serializer: flat objects, arrays of objects, numbers and strings
// — exactly what the bench reports need, with stable key order so diffs of
// re-recorded numbers stay reviewable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ldp::bench {

/// Build one JSON object as an ordered key/value list.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    items_.push_back(quote(key) + ": " + buf);
    return *this;
  }
  JsonObject& field(const std::string& key, uint64_t value) {
    items_.push_back(quote(key) + ": " + std::to_string(value));
    return *this;
  }
  JsonObject& field(const std::string& key, const std::string& value) {
    items_.push_back(quote(key) + ": " + quote(value));
    return *this;
  }
  JsonObject& field(const std::string& key, const JsonObject& value) {
    items_.push_back(quote(key) + ": " + value.str());
    return *this;
  }
  JsonObject& field(const std::string& key, const std::vector<JsonObject>& arr) {
    std::string out = quote(key) + ": [";
    for (size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out += ", ";
      out += arr[i].str();
    }
    out += "]";
    items_.push_back(std::move(out));
    return *this;
  }

  std::string str() const {
    std::string out = "{";
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) out += ", ";
      out += items_[i];
    }
    out += "}";
    return out;
  }

  /// Multi-line render for top-level report files (one field per line).
  std::string pretty() const {
    std::string out = "{\n";
    for (size_t i = 0; i < items_.size(); ++i) {
      out += "  " + items_[i];
      if (i + 1 < items_.size()) out += ",";
      out += "\n";
    }
    out += "}\n";
    return out;
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
    return out;
  }
  std::vector<std::string> items_;
};

/// Write `obj` to `path` (pretty form). Returns false on I/O failure.
inline bool write_json_file(const std::string& path, const JsonObject& obj) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string body = obj.pretty();
  size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return n == body.size();
}

}  // namespace ldp::bench
