// Figure 7: CDF of query inter-arrival time, original vs replayed.
//
// Replays the synthetic fixed-interval traces and a B-Root-like trace over
// UDP loopback and prints paired CDF points (log-spaced percentiles) for
// the original timestamps and the actual send times. In the paper the two
// curves coincide for inter-arrivals >= 10 ms and for the real trace's
// upper half, diverging for sub-millisecond fixed gaps.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"

using namespace ldp;

namespace {

void interarrival_cdf(const char* label, const std::vector<trace::TraceRecord>& trace,
                      const Endpoint& server) {
  replay::EngineConfig cfg;
  cfg.server = server;
  cfg.drain_grace = kSecond / 2;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", report.error().message.c_str());
    return;
  }

  Sampler original, replayed;
  for (size_t i = 1; i < trace.size(); ++i) {
    original.add(ns_to_sec(trace[i].timestamp - trace[i - 1].timestamp));
  }
  // Send times arrive unordered across queriers; sort a copy.
  std::vector<TimeNs> sends;
  sends.reserve(report->sends.size());
  for (const auto& sr : report->sends) sends.push_back(sr.send_time);
  std::sort(sends.begin(), sends.end());
  for (size_t i = 1; i < sends.size(); ++i)
    replayed.add(ns_to_sec(sends[i] - sends[i - 1]));

  std::printf("  %s\n", label);
  std::printf("    %-6s %14s %14s\n", "pct", "original(s)", "replayed(s)");
  for (double q : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    std::printf("    %5.0f%% %14.6f %14.6f\n", q * 100, original.quantile(q),
                replayed.quantile(q));
  }
  bench::print_loss_counters(*report);
}

}  // namespace

int main() {
  auto bg = server::BackgroundServer::start(bench::root_wildcard_server());
  if (!bg.ok()) return 1;

  bench::print_header("Figure 7", "inter-arrival CDF, original vs replayed");

  const TimeNs kDuration = 10 * kSecond;
  struct SynCase {
    const char* label;
    TimeNs gap;
  };
  const SynCase cases[] = {
      {"synthetic 0.1 ms", kMilli / 10}, {"synthetic 1 ms", kMilli},
      {"synthetic 10 ms", 10 * kMilli},  {"synthetic 100 ms", 100 * kMilli},
      {"synthetic 1 s", kSecond},
  };
  for (const auto& c : cases) {
    synth::FixedTraceSpec spec;
    spec.interarrival_ns = c.gap;
    spec.duration_ns = std::max<TimeNs>(kDuration, 4 * c.gap);
    spec.client_count = 100;
    spec.seed = 7;
    interarrival_cdf(c.label, synth::make_fixed_trace(spec), (*bg)->endpoint());
  }

  auto broot = bench::broot16_trace(2000, kDuration, 5000, 77);
  interarrival_cdf("B-Root (scaled)", broot, (*bg)->endpoint());

  std::printf(
      "\n  Paper reference: replayed and original CDFs overlap for gaps >= 10 ms\n"
      "  and for the bulk of the real trace; sub-ms fixed gaps show jitter because\n"
      "  syscall overhead approaches the gap itself.\n");
  return 0;
}
