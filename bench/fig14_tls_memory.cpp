// Figure 14: server memory and connection footprint over time with all
// queries over TLS — the companion to Figure 13. The paper's claims: the
// connection counts match the TCP experiment (TLS reuses the same
// connection discipline) while memory runs ~3 GB higher (~18 GB at the
// 20 s timeout) from per-session TLS state — only ~30% above TCP, versus
// the 6x jump from UDP to TCP.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "simnet/replay_sim.hpp"

using namespace ldp;

int main() {
  bench::print_header("Figure 14",
                      "memory and connections over time, all queries over TLS");

  const TimeNs kTraceDuration = 10 * 60 * kSecond;
  auto original = bench::broot16_trace(4000, kTraceDuration, 25000, 13);
  auto all_tcp = bench::force_transport(original, Transport::Tcp);
  auto all_tls = bench::force_transport(original, Transport::Tls);
  auto server = bench::root_wildcard_server();

  std::printf("  per-timeout steady state (samples after minute 3):\n");
  std::printf("  %-9s %14s %14s %14s %14s\n", "timeout", "TLS mem(GB)", "TCP mem(GB)",
              "established", "TIME_WAIT");
  for (TimeNs timeout = 5 * kSecond; timeout <= 40 * kSecond; timeout += 5 * kSecond) {
    simnet::SimReplayConfig cfg;
    cfg.rtt = kMilli / 2;
    cfg.idle_timeout = timeout;
    cfg.sample_interval = 60 * kSecond;
    auto tls = simnet::simulate_replay(all_tls, server, cfg);
    auto tcp = simnet::simulate_replay(all_tcp, server, cfg);
    const auto& last = tls.samples.back();
    std::printf("  %6llds  %14.2f %14.2f %14zu %14zu\n",
                static_cast<long long>(timeout / kSecond),
                tls.steady_memory_gb(3).median, tcp.steady_memory_gb(3).median,
                last.established, last.time_wait);
  }

  // Time series at the 20 s operating point (the figure's per-minute view).
  simnet::SimReplayConfig cfg;
  cfg.rtt = kMilli / 2;
  cfg.idle_timeout = 20 * kSecond;
  cfg.sample_interval = 60 * kSecond;
  auto tls = simnet::simulate_replay(all_tls, server, cfg);
  std::printf("\n  20s-timeout TLS time series (per minute):\n");
  std::printf("    %-4s %12s %14s %14s\n", "min", "mem(GB)", "established",
              "TIME_WAIT");
  for (size_t i = 0; i < tls.samples.size(); ++i) {
    const auto& s = tls.samples[i];
    std::printf("    %-4zu %12.2f %14zu %14zu\n", i + 1,
                static_cast<double>(s.memory_bytes) / (1ull << 30), s.established,
                s.time_wait);
  }

  std::printf(
      "\n  Paper reference: ~18 GB at 20 s timeout (TCP: 15 GB, +30%%);\n"
      "  connection counts indistinguishable from the TCP experiment; steady\n"
      "  state within ~5 minutes.\n");
  return 0;
}
