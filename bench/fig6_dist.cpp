// Figure 6 (distributed): timing fidelity of multi-process replay.
//
// The paper distributes queriers across client hosts and starts them
// together; this bench runs the same experiment on one machine with real
// processes: `--workers 1` vs `--workers 4` replay the same trace through
// forked ldp-worker processes behind the barrier-synchronized start, and we
// compare the (actual send offset − trace offset) distribution against the
// in-process engine's. A third leg SIGKILLs one worker mid-replay and checks
// the respawn-from-checkpoint path reproduces the uninterrupted counters
// exactly.
//
// Numbers land in BENCH_fig6_dist.json (checked in; EXPERIMENTS.md has the
// re-record workflow).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "replay/dist/controller.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"
#include "trace/binary.hpp"

#ifndef LDP_WORKER_BIN
#error "LDP_WORKER_BIN must point at the built ldp-worker executable"
#endif

using namespace ldp;

namespace {

Summary timing_error_summary(const replay::EngineReport& report, TimeNs t0) {
  Sampler error_ms;
  // Skip the first second of replay (startup transients; the paper ignores
  // the first 20 s of its hour-long replays).
  for (const auto& sr : report.sends) {
    if (sr.trace_time - t0 < kSecond) continue;
    error_ms.add(ns_to_ms((sr.send_time - report.replay_start) -
                          (sr.trace_time - t0)));
  }
  return error_ms.summary();
}

struct RunResult {
  replay::EngineReport report;
  Summary error;
  TimeNs max_abs_misalign = 0;
  int64_t max_drift = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_fig6_dist.json";

  auto bg = server::BackgroundServer::start(bench::root_wildcard_server());
  if (!bg.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", bg.error().message.c_str());
    return 1;
  }

  // One shared trace: 6 s at 2 ms inter-arrival (3000 queries, 32 sources)
  // — enough load to expose scheduling error, light enough that four timed
  // worker processes coexist on one core.
  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 2 * kMilli;
  spec.duration_ns = 6 * kSecond;
  spec.client_count = 32;
  spec.seed = 6;
  auto trace = synth::make_fixed_trace(spec);
  const TimeNs t0 = trace.front().timestamp;

  const std::string trace_path = "/tmp/ldp_fig6_dist_trace.ldpb";
  {
    trace::BinaryWriter w;
    for (const auto& rec : trace) w.add(rec);
    auto saved = w.save(trace_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "trace save failed: %s\n", saved.error().message.c_str());
      return 1;
    }
  }

  auto run_dist = [&](size_t workers, int64_t kill_worker,
                      TimeNs kill_after) -> Result<RunResult> {
    replay::dist::DistConfig cfg;
    cfg.workers = workers;
    cfg.worker_bin = LDP_WORKER_BIN;
    cfg.trace_path = trace_path;
    cfg.server = (*bg)->endpoint();
    cfg.distributors = 1;
    cfg.queriers_per_distributor = 2;
    cfg.heartbeat_interval = 100 * kMilli;
    cfg.checkpoint_interval = 250 * kMilli;
    cfg.start_lead = 300 * kMilli;
    cfg.kill_worker = kill_worker;
    cfg.kill_after = kill_after;
    auto dr = LDP_TRY(replay::dist::run_distributed(cfg));
    RunResult out;
    out.error = timing_error_summary(dr.report, t0);
    out.max_abs_misalign = dr.max_abs_misalign;
    out.max_drift = dr.report.max_drift_ns;
    out.report = std::move(dr.report);
    return out;
  };

  bench::print_header("Figure 6 (dist)",
                      "timing fidelity of barrier-synchronized worker processes");

  // In-process baseline: the bound distributed replay has to stay within.
  replay::EngineConfig base_cfg;
  base_cfg.server = (*bg)->endpoint();
  base_cfg.distributors = 1;
  base_cfg.queriers_per_distributor = 2;
  auto base = replay::QueryEngine(base_cfg).replay(trace);
  if (!base.ok()) {
    std::fprintf(stderr, "baseline replay failed: %s\n", base.error().message.c_str());
    return 1;
  }
  Summary base_err = timing_error_summary(*base, t0);
  bench::print_summary_row("in-process baseline", base_err, "ms");

  auto one = run_dist(1, -1, 0);
  if (!one.ok()) {
    std::fprintf(stderr, "workers=1 failed: %s\n", one.error().message.c_str());
    return 1;
  }
  bench::print_summary_row("--workers 1", one->error, "ms");

  auto four = run_dist(4, -1, 0);
  if (!four.ok()) {
    std::fprintf(stderr, "workers=4 failed: %s\n", four.error().message.c_str());
    return 1;
  }
  bench::print_summary_row("--workers 4", four->error, "ms");
  std::printf("  max measured drift: %.3f ms   max start misalign: %.3f ms\n",
              static_cast<double>(four->max_drift) / 1e6,
              static_cast<double>(four->max_abs_misalign) / 1e6);

  // Fidelity bound: a distributed start may not shift or widen the timing
  // error by more than the in-process pipeline's own spread plus a fixed
  // scheduling allowance (single shared core; the paper's multi-host spread
  // is bounded by NTP instead).
  const double allowance_ms = 8.0;
  const double base_iqr = base_err.q3 - base_err.q1;
  auto within = [&](const Summary& s) {
    return std::abs(s.median - base_err.median) <= allowance_ms &&
           (s.q3 - s.q1) <= 4 * base_iqr + allowance_ms;
  };
  const bool fidelity_ok = within(one->error) && within(four->error);
  std::printf("  fidelity within single-process bound: %s\n",
              fidelity_ok ? "yes" : "NO");

  // Crash leg: SIGKILL worker 1 at 1.5 s (past the first checkpoints), let
  // supervision respawn + resume it, and compare against the clean
  // workers=4 run — counters must match exactly.
  auto killed = run_dist(4, 1, 1500 * kMilli);
  if (!killed.ok()) {
    std::fprintf(stderr, "kill/resume run failed: %s\n", killed.error().message.c_str());
    return 1;
  }
  const bool exact =
      killed->report.queries_sent == four->report.queries_sent &&
      killed->report.responses_received == four->report.responses_received;
  std::printf(
      "  kill -9 / respawn / resume: crashes %llu respawned %llu  sent %llu "
      "answered %llu  exact-equality: %s\n",
      static_cast<unsigned long long>(killed->report.worker_crashes),
      static_cast<unsigned long long>(killed->report.workers_respawned),
      static_cast<unsigned long long>(killed->report.queries_sent),
      static_cast<unsigned long long>(killed->report.responses_received),
      exact ? "yes" : "NO");

  auto leg = [&](const char* label, const RunResult& r) {
    bench::JsonObject o;
    o.field("label", std::string(label));
    o.field("queries_sent", r.report.queries_sent);
    o.field("responses_received", r.report.responses_received);
    o.field("median_ms", r.error.median);
    o.field("q1_ms", r.error.q1);
    o.field("q3_ms", r.error.q3);
    o.field("max_ms", r.error.max);
    o.field("max_drift_ms", static_cast<double>(r.max_drift) / 1e6);
    o.field("max_misalign_ms", static_cast<double>(r.max_abs_misalign) / 1e6);
    o.field("worker_crashes", r.report.worker_crashes);
    o.field("workers_respawned", r.report.workers_respawned);
    return o;
  };
  bench::JsonObject baseline;
  baseline.field("label", std::string("in-process"));
  baseline.field("queries_sent", base->queries_sent);
  baseline.field("median_ms", base_err.median);
  baseline.field("q1_ms", base_err.q1);
  baseline.field("q3_ms", base_err.q3);

  bench::JsonObject root;
  root.field("bench", std::string("fig6_dist"));
  root.field("trace_queries", static_cast<uint64_t>(trace.size()));
  root.field("trace_duration_s", ns_to_sec(spec.duration_ns));
  root.field("baseline", baseline);
  root.field("runs", std::vector<bench::JsonObject>{
                         leg("workers=1", *one), leg("workers=4", *four),
                         leg("workers=4 kill+resume", *killed)});
  root.field("fidelity_within_bound", std::string(fidelity_ok ? "yes" : "no"));
  root.field("kill_resume_exact", std::string(exact ? "yes" : "no"));
  if (!bench::write_json_file(json_path, root)) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::printf("  wrote %s\n", json_path);
  return (fidelity_ok && exact) ? 0 : 1;
}
