// Ablation: trace input formats (DESIGN.md decision 3).
//
// §2.5 argues for pre-converting traces to the customized binary stream:
// pcap parsing and (worse) text parsing on the replay path would throttle
// fast replays. This ablation measures read throughput of the same trace
// in all three formats, plus the one-time conversion costs.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "trace/binary.hpp"
#include "trace/pcap.hpp"
#include "trace/text.hpp"

using namespace ldp;

namespace {

std::vector<trace::TraceRecord> sample_trace() {
  synth::RootTraceSpec spec;
  spec.mean_rate_qps = 1000;
  spec.duration_ns = 10 * kSecond;
  spec.client_count = 2000;
  spec.seed = 42;
  return synth::make_root_trace(spec);
}

const std::vector<trace::TraceRecord>& cached_trace() {
  static const auto trace = sample_trace();
  return trace;
}

std::vector<uint8_t> as_pcap() {
  trace::PcapWriter w;
  for (const auto& rec : cached_trace()) w.add(rec);
  return std::move(w).take();
}

std::vector<uint8_t> as_binary() {
  trace::BinaryWriter w;
  for (const auto& rec : cached_trace()) w.add(rec);
  return std::move(w).take();
}

std::string as_text() { return *trace::trace_to_text(cached_trace()); }

void BM_ReadBinaryStream(benchmark::State& state) {
  auto bytes = as_binary();
  for (auto _ : state) {
    auto reader = trace::BinaryReader::from_bytes(bytes);
    auto all = reader->read_all();
    benchmark::DoNotOptimize(all);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(all->size()));
  }
}
BENCHMARK(BM_ReadBinaryStream);

void BM_ReadPcap(benchmark::State& state) {
  auto bytes = as_pcap();
  for (auto _ : state) {
    auto reader = trace::PcapReader::from_bytes(bytes);
    auto all = reader->read_all();
    benchmark::DoNotOptimize(all);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(all->size()));
  }
}
BENCHMARK(BM_ReadPcap);

void BM_ReadText(benchmark::State& state) {
  auto text = as_text();
  for (auto _ : state) {
    auto all = trace::trace_from_text(text);
    benchmark::DoNotOptimize(all);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(all->size()));
  }
}
BENCHMARK(BM_ReadText);

void BM_ConvertPcapToBinary(benchmark::State& state) {
  auto bytes = as_pcap();
  for (auto _ : state) {
    auto reader = trace::PcapReader::from_bytes(bytes);
    trace::BinaryWriter w;
    while (true) {
      auto rec = reader->next();
      if (!rec.ok() || !rec->has_value()) break;
      w.add(**rec);
    }
    benchmark::DoNotOptimize(w.record_count());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(w.record_count()));
  }
}
BENCHMARK(BM_ConvertPcapToBinary);

void BM_ConvertTextToBinary(benchmark::State& state) {
  auto text = as_text();
  for (auto _ : state) {
    auto records = trace::trace_from_text(text);
    trace::BinaryWriter w;
    for (const auto& rec : *records) w.add(rec);
    benchmark::DoNotOptimize(w.record_count());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(w.record_count()));
  }
}
BENCHMARK(BM_ConvertTextToBinary);

}  // namespace

BENCHMARK_MAIN();
