// Application study: replay fidelity under network impairment. §5 frames
// LDplayer as the tool for "what-if" experiments; this binary asks the
// what-if the fault layer exists for: how does the replayed workload — and
// the conclusions drawn from it — degrade as the emulated network gets
// worse? Sweeps loss/duplication/corruption scenarios over a B-Root-like
// trace in the simnet runtime (virtual time, so every row is bit-exact
// reproducible) and prints the fault layer's own accounting next to the
// server-visible effects.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "fault/fault.hpp"
#include "simnet/replay_sim.hpp"

using namespace ldp;

int main() {
  bench::print_header("Impairment application study",
                      "replay through deterministic fault scenarios");

  const TimeNs kDuration = 60 * kSecond;
  auto trace = bench::broot16_trace(2000, kDuration, 20000, 99);
  auto server = bench::root_wildcard_server();

  simnet::SimReplayConfig cfg;
  cfg.rtt = kMilli;
  cfg.sample_interval = 10 * kSecond;

  struct Scenario {
    const char* label;
    const char* spec;
  };
  const Scenario kScenarios[] = {
      {"clean", ""},
      {"loss 1%", "loss:0.01,seed:42"},
      {"loss 5%", "loss:0.05,seed:42"},
      {"loss 20%", "loss:0.20,seed:42"},
      {"dup 5%", "dup:0.05,seed:42"},
      {"corrupt 5%", "corrupt:0.05,seed:42"},
      {"outage 10s", "blackhole:20s-30s,seed:42"},
      {"flaky link", "loss:0.02,flap:5s/500ms,seed:42"},
      {"kitchen sink", "loss:0.05,dup:0.01,corrupt:0.01,delay:5ms,jitter:2ms,seed:42"},
  };

  std::printf("  %-14s %10s %10s %10s %10s  %s\n", "scenario", "queries",
              "answered", "lost", "resp%", "fault-layer accounting");
  for (const auto& sc : kScenarios) {
    fault::FaultSpec spec;
    if (sc.spec[0] != '\0') {
      auto parsed = fault::parse_fault_spec(sc.spec);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad spec %s: %s\n", sc.spec,
                     parsed.error().message.c_str());
        return 1;
      }
      spec = *parsed;
    }
    cfg.fault = sc.spec[0] != '\0' ? &spec : nullptr;
    auto result = simnet::simulate_replay(trace, server, cfg);
    std::printf("  %-14s %10llu %10llu %10llu %9.1f%%  %s\n", sc.label,
                static_cast<unsigned long long>(result.queries),
                static_cast<unsigned long long>(result.responses),
                static_cast<unsigned long long>(result.queries_lost),
                result.queries > 0
                    ? 100.0 * static_cast<double>(result.responses) /
                          static_cast<double>(result.queries)
                    : 0.0,
                result.impairments.summary().c_str());

    // Reproducibility check: the same seed must give byte-identical
    // impairment accounting on a second run (the fault layer's contract).
    if (cfg.fault != nullptr) {
      auto again = simnet::simulate_replay(trace, server, cfg);
      if (!(again.impairments == result.impairments) ||
          again.queries_lost != result.queries_lost) {
        std::fprintf(stderr, "DETERMINISM VIOLATION in scenario %s\n", sc.label);
        return 1;
      }
    }
  }

  std::printf(
      "\n  reading: response rate tracks (1 - drop) until the blackhole row,\n"
      "  where a contiguous outage removes a time slice instead of a random\n"
      "  sample; corrupt rows lose only queries mangled beyond parsing. Every\n"
      "  row is seed-deterministic (each scenario is run twice and compared).\n");
  return 0;
}
