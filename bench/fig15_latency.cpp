// Figure 15: query latency vs client-server RTT with a 20 s connection
// timeout (B-Root-17b), in three panels:
//   (a) latency over ALL clients — medians stay low because busy clients
//       (1% of clients, ~75% of load) essentially always reuse connections;
//   (b) latency over NON-BUSY clients (<250 queries) — TCP median ≈ 2 RTT,
//       TLS climbing non-linearly from 2 toward 4 RTT as RTT grows;
//   (c) CDF of per-client query load — the heavy tail behind the split.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "simnet/replay_sim.hpp"
#include "trace/stats.hpp"

using namespace ldp;

int main() {
  bench::print_header("Figure 15", "query latency vs RTT, 20s TCP timeout");

  // B-Root-17b-like: the 20-minute subset, scaled. The client population is
  // kept large relative to the rate so the non-busy majority keeps the
  // original's sparse per-client cadence (gaps >> the 20 s timeout) — that
  // sparsity is what panel (b) measures.
  auto original = bench::broot16_trace(3000, 5 * 60 * kSecond, 100000, 15);
  auto all_tcp = bench::force_transport(original, Transport::Tcp);
  auto all_tls = bench::force_transport(original, Transport::Tls);
  auto server = bench::root_wildcard_server();

  struct Workload {
    const char* label;
    const std::vector<trace::TraceRecord>* trace;
  };
  const Workload workloads[] = {
      {"original (3% TCP)", &original}, {"all TCP", &all_tcp}, {"all TLS", &all_tls}};

  // One simulation per (RTT, workload); keep only the summaries.
  struct Row {
    int rtt_ms;
    const char* label;
    Summary all;
    Summary nonbusy;
  };
  std::vector<Row> table;
  for (int rtt_ms : {0, 20, 40, 60, 80, 100, 120, 140, 160}) {
    for (const auto& w : workloads) {
      simnet::SimReplayConfig cfg;
      cfg.rtt = rtt_ms == 0 ? kMilli / 2 : rtt_ms * kMilli;
      cfg.idle_timeout = 20 * kSecond;
      cfg.sample_interval = 60 * kSecond;
      cfg.busy_threshold = 250;
      auto result = simnet::simulate_replay(*w.trace, server, cfg);
      table.push_back(Row{rtt_ms, w.label, result.latency_all_ms.summary(),
                          result.latency_nonbusy_ms.summary()});
    }
  }

  std::printf("\n  (a) latency over all clients (ms):\n");
  std::printf("  %-8s %-19s %8s %8s %8s %8s %8s\n", "RTT(ms)", "workload", "p5", "q1",
              "median", "q3", "p95");
  for (const auto& row : table) {
    std::printf("  %-8d %-19s %8.1f %8.1f %8.1f %8.1f %8.1f\n", row.rtt_ms, row.label,
                row.all.p5, row.all.q1, row.all.median, row.all.q3, row.all.p95);
  }

  std::printf("\n  (b) latency over non-busy clients (<250 queries) (ms):\n");
  std::printf("  %-8s %-19s %8s %8s %8s %8s %8s %10s\n", "RTT(ms)", "workload", "p5",
              "q1", "median", "q3", "p95", "med/RTT");
  for (const auto& row : table) {
    double per_rtt = row.rtt_ms > 0 ? row.nonbusy.median / row.rtt_ms : 0;
    std::printf("  %-8d %-19s %8.1f %8.1f %8.1f %8.1f %8.1f %10.2f\n", row.rtt_ms,
                row.label, row.nonbusy.p5, row.nonbusy.q1, row.nonbusy.median,
                row.nonbusy.q3, row.nonbusy.p95, per_rtt);
  }

  std::printf("\n  (c) CDF of per-client query load (original trace):\n");
  auto load = trace::per_client_load(original);
  Sampler load_sampler;
  uint64_t total_queries = 0;
  for (const auto& [addr, n] : load) {
    load_sampler.add(static_cast<double>(n));
    total_queries += n;
  }
  std::printf("    %-6s %12s\n", "pct", "queries/IP");
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.81, 0.90, 0.95, 0.99, 1.0}) {
    std::printf("    %5.0f%% %12.0f\n", q * 100, load_sampler.quantile(q));
  }
  // The busy-client concentration figure the paper quotes.
  std::vector<uint64_t> counts;
  counts.reserve(load.size());
  for (const auto& [addr, n] : load) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  size_t top1 = std::max<size_t>(1, counts.size() / 100);
  uint64_t top_sum = 0;
  for (size_t i = 0; i < top1; ++i) top_sum += counts[i];
  std::printf("    top 1%% of clients carry %.0f%% of queries (paper: ~75%%)\n",
              100.0 * static_cast<double>(top_sum) / static_cast<double>(total_queries));

  std::printf(
      "\n  Paper reference: (a) TCP median ~15%% above UDP at 160 ms RTT thanks to\n"
      "  reuse; (b) non-busy TCP median ~2 RTT (25th pct 1 RTT), TLS median rising\n"
      "  non-linearly 2 -> 4 RTT; (c) 1%% of clients = 3/4 of load, 81%% send <10.\n");
  return 0;
}
