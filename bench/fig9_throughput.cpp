// Figure 9: single-host fast-replay throughput over UDP, before/after the
// batched hot path.
//
// Streams a continuous batch of identical queries (www.example.com, §4.3)
// through the query engine in fast mode (no timers) against the loopback
// server and samples query rate and bandwidth every two seconds. The paper
// reaches 87k q/s (60 Mb/s) on a 4-core host with the generator as the
// bottleneck; a single shared core reaches proportionally less — the flat
// steady-state shape is the claim under test.
//
// Two phases share the workload: "scalar" (one syscall per datagram, no
// response cache) and "batched" (sendmmsg/recvmmsg + template cache, the
// defaults). Each phase snapshots the process-wide net::IoCounters so the
// kernel-crossing cost per query is measured, not inferred — the server
// runs in-process, so the deltas cover both sides of every exchange. The
// before/after numbers land in BENCH_fig9_throughput.json (checked in; see
// EXPERIMENTS.md for the re-record recipe).
#include <cstdio>
#include <thread>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "net/socket.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"
#include "server/sharded_frontend.hpp"

using namespace ldp;

namespace {

struct PhaseResult {
  double duration_s = 0;
  double rate_qps = 0;
  double mbps = 0;
  double syscalls_per_query = 0;
  uint64_t queries_sent = 0;
  uint64_t responses_received = 0;
  uint64_t server_answered = 0;
  uint64_t cache_hits = 0;
  net::IoCounters io;  ///< deltas over the phase
  metrics::LifecycleCounters lifecycle;
  uint64_t max_in_flight = 0;
};

net::IoCounters io_delta(const net::IoCounters& before, const net::IoCounters& after) {
  net::IoCounters d;
  d.sendto_calls = after.sendto_calls - before.sendto_calls;
  d.recvfrom_calls = after.recvfrom_calls - before.recvfrom_calls;
  d.sendmmsg_calls = after.sendmmsg_calls - before.sendmmsg_calls;
  d.recvmmsg_calls = after.recvmmsg_calls - before.recvmmsg_calls;
  d.datagrams_sent = after.datagrams_sent - before.datagrams_sent;
  d.datagrams_received = after.datagrams_received - before.datagrams_received;
  return d;
}

PhaseResult run_phase(bool batched, const std::vector<trace::TraceRecord>& batch,
                      size_t query_bytes, TimeNs budget) {
  PhaseResult out;
  // Fresh server per phase so the template cache and stats start cold and
  // the scalar phase cannot ride on batched-phase state.
  server::FrontendConfig fc;
  fc.batched_udp = batched;
  fc.response_cache_entries = batched ? 1024 : 0;
  auto bg = server::BackgroundServer::start(bench::root_wildcard_server(), fc);
  if (!bg.ok()) return out;

  std::printf("  -- %s path --\n", batched ? "batched" : "scalar");
  std::printf("  %-8s %12s %12s\n", "t(s)", "rate(q/s)", "Mbit/s");
  net::IoCounters before = net::io_counters();
  TimeNs phase_start = mono_now_ns();
  TimeNs last_mark = phase_start;
  uint64_t last_total = 0;

  while (mono_now_ns() - phase_start < budget) {
    replay::EngineConfig cfg;
    cfg.server = (*bg)->endpoint();
    cfg.timed = false;
    cfg.distributors = 1;
    cfg.queriers_per_distributor = 2;
    cfg.drain_grace = 100 * kMilli;
    cfg.batched_io = batched;
    replay::QueryEngine engine(cfg);
    auto report = engine.replay(batch);
    if (!report.ok()) break;
    out.queries_sent += report->queries_sent;
    out.responses_received += report->responses_received;
    out.lifecycle.merge(report->lifecycle);
    out.max_in_flight = std::max(out.max_in_flight, report->max_in_flight);

    TimeNs now = mono_now_ns();
    if (now - last_mark >= 2 * kSecond) {
      double dt = ns_to_sec(now - last_mark);
      double rate = static_cast<double>(out.queries_sent - last_total) / dt;
      std::printf("  %8.1f %12.0f %12.1f\n", ns_to_sec(now - phase_start), rate,
                  rate * static_cast<double>(query_bytes + 28) * 8 / 1e6);
      last_mark = now;
      last_total = out.queries_sent;
    }
  }
  out.io = io_delta(before, net::io_counters());
  out.duration_s = ns_to_sec(mono_now_ns() - phase_start);
  out.rate_qps = static_cast<double>(out.queries_sent) / out.duration_s;
  out.mbps = out.rate_qps * static_cast<double>(query_bytes + 28) * 8 / 1e6;
  (*bg)->stop();  // quiesce before reading non-atomic cache stats
  out.server_answered = (*bg)->auth().stats().queries.load();
  if (const auto* cache = (*bg)->frontend().response_cache())
    out.cache_hits = cache->stats().hits;
  if (out.queries_sent > 0)
    out.syscalls_per_query =
        static_cast<double>(out.io.syscalls()) / static_cast<double>(out.queries_sent);

  std::printf("  overall: %.0f q/s over %.1f s;  syscalls/query %.3f"
              "  (sendto %llu recvfrom %llu sendmmsg %llu recvmmsg %llu)\n",
              out.rate_qps, out.duration_s, out.syscalls_per_query,
              static_cast<unsigned long long>(out.io.sendto_calls),
              static_cast<unsigned long long>(out.io.recvfrom_calls),
              static_cast<unsigned long long>(out.io.sendmmsg_calls),
              static_cast<unsigned long long>(out.io.recvmmsg_calls));
  std::printf("  client lifecycle: answered %llu  lost %llu  retries %llu"
              "  deferred-sends %llu  max-in-flight %llu\n",
              static_cast<unsigned long long>(out.responses_received),
              static_cast<unsigned long long>(out.lifecycle.expired),
              static_cast<unsigned long long>(out.lifecycle.retries),
              static_cast<unsigned long long>(out.lifecycle.deferred_sends),
              static_cast<unsigned long long>(out.max_in_flight));
  std::printf("  server answered: %llu (template-cache hits %llu)\n",
              static_cast<unsigned long long>(out.server_answered),
              static_cast<unsigned long long>(out.cache_hits));
  return out;
}

// Core-sweep phase: N SO_REUSEPORT server shards + an N-way sharded querier
// pool, both on the batched defaults. Measures the end-to-end answered rate
// the sharded pipeline sustains. On a multi-core host the answered rate
// should scale with N until cores run out; on a 1-core host (like the
// recorded run — see EXPERIMENTS.md) the sweep measures sharding overhead
// instead, which is the honest number for this box.
PhaseResult run_shard_phase(size_t shards, const std::vector<trace::TraceRecord>& batch,
                            size_t query_bytes, TimeNs budget) {
  PhaseResult out;
  server::FrontendConfig fc;  // defaults: batched I/O + template cache
  auto srv = server::ShardedServer::start(bench::root_wildcard_server(), fc, shards);
  if (!srv.ok()) return out;

  std::printf("  -- %zu shard%s --\n", shards, shards == 1 ? "" : "s");
  net::IoCounters before = net::io_counters();
  TimeNs phase_start = mono_now_ns();
  while (mono_now_ns() - phase_start < budget) {
    replay::EngineConfig cfg;
    cfg.server = (*srv)->endpoint();
    cfg.timed = false;
    cfg.distributors = 1;
    cfg.queriers_per_distributor = 2;
    cfg.shards = shards;
    cfg.drain_grace = 100 * kMilli;
    replay::QueryEngine engine(cfg);
    auto report = engine.replay(batch);
    if (!report.ok()) break;
    out.queries_sent += report->queries_sent;
    out.responses_received += report->responses_received;
    out.lifecycle.merge(report->lifecycle);
    out.max_in_flight = std::max(out.max_in_flight, report->max_in_flight);
  }
  out.io = io_delta(before, net::io_counters());
  out.duration_s = ns_to_sec(mono_now_ns() - phase_start);
  out.rate_qps = static_cast<double>(out.queries_sent) / out.duration_s;
  out.mbps = out.rate_qps * static_cast<double>(query_bytes + 28) * 8 / 1e6;
  const server::ShardedExitReport& exit_report = (*srv)->stop();
  out.server_answered = (*srv)->auth().stats().queries.load();
  out.cache_hits = exit_report.cache.hits;
  if (out.queries_sent > 0)
    out.syscalls_per_query =
        static_cast<double>(out.io.syscalls()) / static_cast<double>(out.queries_sent);
  std::printf("  sent %.0f q/s, answered %.0f q/s over %.1f s"
              " (answered %llu, server %llu, cache hits %llu)\n",
              out.rate_qps,
              static_cast<double>(out.responses_received) / out.duration_s,
              out.duration_s,
              static_cast<unsigned long long>(out.responses_received),
              static_cast<unsigned long long>(out.server_answered),
              static_cast<unsigned long long>(out.cache_hits));
  return out;
}

// One-shard equivalence: under a fixed-seed fault and no retransmits, the
// ShardedServer(1) + shards=1 engine must reproduce the single-loop path's
// send-side counters exactly (the shards==1 code path is byte-identical and
// the fault-draw schedule is a function of the seed alone).
bool one_shard_counters_match(const std::vector<trace::TraceRecord>& batch) {
  replay::EngineConfig cfg;
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;  // retransmits would consume extra fault draws
  cfg.drain_grace = 200 * kMilli;
  cfg.fault = *fault::parse_fault_spec("dup:0.03,seed:42");

  server::FrontendConfig fc;
  auto bg = server::BackgroundServer::start(bench::root_wildcard_server(), fc);
  if (!bg.ok()) return false;
  cfg.server = (*bg)->endpoint();
  cfg.shards = 1;
  auto plain = replay::QueryEngine(cfg).replay(batch);
  (*bg)->stop();
  if (!plain.ok()) return false;

  auto srv = server::ShardedServer::start(bench::root_wildcard_server(), fc, 1);
  if (!srv.ok()) return false;
  cfg.server = (*srv)->endpoint();
  auto sharded = replay::QueryEngine(cfg).replay(batch);
  (*srv)->stop();
  if (!sharded.ok()) return false;

  // Send-side only: responses depend on loopback receive-buffer luck under
  // a fast-mode burst. (The shard_test suite checks full-book equality on
  // paced traces where nothing is dropped.)
  return plain->queries_sent == sharded->queries_sent &&
         plain->impairments == sharded->impairments;
}

bench::JsonObject phase_json(const PhaseResult& r) {
  bench::JsonObject io;
  io.field("sendto_calls", r.io.sendto_calls)
      .field("recvfrom_calls", r.io.recvfrom_calls)
      .field("sendmmsg_calls", r.io.sendmmsg_calls)
      .field("recvmmsg_calls", r.io.recvmmsg_calls)
      .field("datagrams_sent", r.io.datagrams_sent)
      .field("datagrams_received", r.io.datagrams_received);
  bench::JsonObject obj;
  obj.field("duration_s", r.duration_s)
      .field("rate_qps", r.rate_qps)
      .field("mbit_per_s", r.mbps)
      .field("syscalls_per_query", r.syscalls_per_query)
      .field("queries_sent", r.queries_sent)
      .field("responses_received", r.responses_received)
      .field("server_answered", r.server_answered)
      .field("template_cache_hits", r.cache_hits)
      .field("max_in_flight", r.max_in_flight)
      .field("io_counters", io);
  return obj;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_fig9_throughput.json";

  bench::print_header("Figure 9", "fast replay throughput (UDP, no timer events)");

  // One batch of identical queries from a handful of sources, as in §4.3
  // (one distributor, several queriers on one host).
  const size_t kBatch = 200000;
  std::vector<trace::TraceRecord> batch;
  batch.reserve(kBatch);
  dns::Message q = dns::Message::make_query(1, *dns::Name::parse("www.example.com"),
                                            dns::RRType::A);
  auto payload = q.to_wire();
  size_t query_bytes = payload.size();
  for (size_t i = 0; i < kBatch; ++i) {
    trace::TraceRecord rec;
    rec.timestamp = 0;
    rec.src = Endpoint{IpAddr{Ip4{10, 0, 0, static_cast<uint8_t>(1 + i % 6)}}, 40000};
    rec.dst = Endpoint{IpAddr{}, 53};
    rec.transport = Transport::Udp;
    rec.direction = trace::Direction::Query;
    rec.dns_payload = payload;
    batch.push_back(std::move(rec));
  }

  PhaseResult scalar = run_phase(false, batch, query_bytes, 8 * kSecond);
  PhaseResult batched = run_phase(true, batch, query_bytes, 8 * kSecond);

  // Core sweep: 1/2/4 SO_REUSEPORT shards, engine shard count matched.
  std::printf("\n  shard sweep (SO_REUSEPORT serving + sharded querier pool):\n");
  const size_t kShardCounts[] = {1, 2, 4};
  PhaseResult shard_phases[3];
  for (size_t i = 0; i < 3; ++i)
    shard_phases[i] = run_shard_phase(kShardCounts[i], batch, query_bytes, 4 * kSecond);
  auto answered_rate = [](const PhaseResult& r) {
    return r.duration_s > 0
               ? static_cast<double>(r.responses_received) / r.duration_s : 0.0;
  };
  double scaling_4x = answered_rate(shard_phases[0]) > 0
      ? answered_rate(shard_phases[2]) / answered_rate(shard_phases[0]) : 0;
  std::printf("  4-shard vs 1-shard answered-rate scaling: %.2fx\n", scaling_4x);

  // Smaller batch keeps the determinism check fast; counters are exact.
  std::vector<trace::TraceRecord> small(batch.begin(), batch.begin() + 20000);
  bool one_shard_match = one_shard_counters_match(small);
  std::printf("  one-shard send-side counters match single-loop path: %s\n",
              one_shard_match ? "yes" : "NO");

  double speedup = scalar.rate_qps > 0 ? batched.rate_qps / scalar.rate_qps : 0;
  double syscall_cut = batched.syscalls_per_query > 0
      ? scalar.syscalls_per_query / batched.syscalls_per_query : 0;
  std::printf("\n  batched vs scalar: %.2fx throughput, %.1fx fewer syscalls/query"
              " (%.3f -> %.3f)\n",
              speedup, syscall_cut, scalar.syscalls_per_query,
              batched.syscalls_per_query);
  std::printf(
      "\n  Paper reference: 87k q/s (60 Mb/s) sustained flat for 5 minutes on a\n"
      "  4-core host, generator saturating one core.\n");

  bench::JsonObject report;
  report.field("bench", std::string("fig9_throughput"))
      .field("workload",
             std::string("200k identical www.example.com/A UDP queries, 6 sources, "
                         "fast mode, repeated for ~8s per phase, loopback in-process "
                         "server (io counters cover both sides)"))
      .field("query_bytes", static_cast<uint64_t>(query_bytes))
      .field("scalar", phase_json(scalar))
      .field("batched", phase_json(batched))
      .field("throughput_speedup", speedup)
      .field("syscalls_per_query_reduction", syscall_cut);
  for (size_t i = 0; i < 3; ++i) {
    bench::JsonObject p = phase_json(shard_phases[i]);
    p.field("answered_rate_qps", answered_rate(shard_phases[i]));
    report.field("shards_" + std::to_string(kShardCounts[i]), p);
  }
  report.field("shard_scaling_4x_answered_rate", scaling_4x)
      .field("one_shard_counters_match_single_loop",
             std::string(one_shard_match ? "yes" : "no"))
      .field("host_cores", static_cast<uint64_t>(std::thread::hardware_concurrency()));
  if (!bench::write_json_file(json_path, report)) {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  std::printf("  recorded: %s\n", json_path);
  return 0;
}
