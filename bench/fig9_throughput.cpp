// Figure 9: single-host fast-replay throughput over UDP.
//
// Streams a continuous batch of identical queries (www.example.com, §4.3)
// through the query engine in fast mode (no timers) against the loopback
// server and samples query rate and bandwidth every two seconds. The paper
// reaches 87k q/s (60 Mb/s) on a 4-core host with the generator as the
// bottleneck; a single shared core reaches proportionally less — the flat
// steady-state shape is the claim under test.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"

using namespace ldp;

int main() {
  auto bg = server::BackgroundServer::start(bench::root_wildcard_server());
  if (!bg.ok()) return 1;

  bench::print_header("Figure 9", "fast replay throughput (UDP, no timer events)");

  // One batch of identical queries from a handful of sources, as in §4.3
  // (one distributor, several queriers on one host).
  const size_t kBatch = 200000;
  std::vector<trace::TraceRecord> batch;
  batch.reserve(kBatch);
  dns::Message q = dns::Message::make_query(1, *dns::Name::parse("www.example.com"),
                                            dns::RRType::A);
  auto payload = q.to_wire();
  size_t query_bytes = payload.size();
  for (size_t i = 0; i < kBatch; ++i) {
    trace::TraceRecord rec;
    rec.timestamp = 0;
    rec.src = Endpoint{IpAddr{Ip4{10, 0, 0, static_cast<uint8_t>(1 + i % 6)}}, 40000};
    rec.dst = Endpoint{IpAddr{}, 53};
    rec.transport = Transport::Udp;
    rec.direction = trace::Direction::Query;
    rec.dns_payload = payload;
    batch.push_back(std::move(rec));
  }

  std::printf("  %-8s %12s %12s\n", "t(s)", "rate(q/s)", "Mbit/s");
  TimeNs bench_start = mono_now_ns();
  uint64_t total = 0;
  TimeNs last_mark = bench_start;
  uint64_t last_total = 0;
  metrics::LifecycleCounters lifecycle;
  uint64_t answered_total = 0, max_in_flight = 0;

  // Run repeated fast-mode batches for ~20 s, sampling every ~2 s.
  while (mono_now_ns() - bench_start < 20 * kSecond) {
    replay::EngineConfig cfg;
    cfg.server = (*bg)->endpoint();
    cfg.timed = false;
    cfg.distributors = 1;
    cfg.queriers_per_distributor = 2;
    cfg.drain_grace = 100 * kMilli;
    replay::QueryEngine engine(cfg);
    auto report = engine.replay(batch);
    if (!report.ok()) break;
    total += report->queries_sent;
    answered_total += report->responses_received;
    lifecycle.merge(report->lifecycle);
    max_in_flight = std::max(max_in_flight, report->max_in_flight);

    TimeNs now = mono_now_ns();
    if (now - last_mark >= 2 * kSecond) {
      double dt = ns_to_sec(now - last_mark);
      double rate = static_cast<double>(total - last_total) / dt;
      double mbps = rate * static_cast<double>(query_bytes + 28) * 8 / 1e6;
      std::printf("  %8.1f %12.0f %12.1f\n", ns_to_sec(now - bench_start), rate, mbps);
      last_mark = now;
      last_total = total;
    }
  }
  double total_dt = ns_to_sec(mono_now_ns() - bench_start);
  std::printf("  overall: %.0f q/s sent over %.1f s (%zu-byte queries)\n",
              static_cast<double>(total) / total_dt, total_dt, query_bytes);
  // Loss accounting across all batches: fast-mode floods legitimately lose
  // queries to loopback buffer overruns; the counters make that loss
  // explicit instead of leaving it implied by the server-side rate gap.
  std::printf(
      "  client lifecycle: answered %llu  lost %llu  timeouts %llu  retries %llu"
      "  deferred-sends %llu  max-in-flight %llu\n",
      static_cast<unsigned long long>(answered_total),
      static_cast<unsigned long long>(lifecycle.expired),
      static_cast<unsigned long long>(lifecycle.timeouts),
      static_cast<unsigned long long>(lifecycle.retries),
      static_cast<unsigned long long>(lifecycle.deferred_sends),
      static_cast<unsigned long long>(max_in_flight));
  // Server-side view: what actually got through and was answered (fast-mode
  // UDP floods overrun loopback buffers; the paper measures at the server).
  uint64_t answered = (*bg)->auth().stats().queries.load();
  std::printf("  server answered: %llu (%.0f q/s)\n",
              static_cast<unsigned long long>(answered),
              static_cast<double>(answered) / total_dt);
  std::printf(
      "\n  Paper reference: 87k q/s (60 Mb/s) sustained flat for 5 minutes on a\n"
      "  4-core host, generator saturating one core.\n");
  return 0;
}
