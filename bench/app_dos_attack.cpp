// Application study: a root/authoritative server under denial-of-service
// load. §1 motivates LDplayer with exactly this question ("How does current
// server operate under the stress of a DoS attack?") and §5 lists it among
// the applications; no figure in the paper shows it, so this binary is the
// repo's worked example of the workflow: generate attack traffic with the
// trace tools, mix it over the legitimate workload, replay, and measure
// server-side cost.
//
// Two attack shapes are swept across intensities:
//  * random-subdomain ("water torture") — cache-busting NXDOMAIN load;
//  * direct flood — one hot name from spoofed sources.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "simnet/replay_sim.hpp"

using namespace ldp;

namespace {

std::vector<trace::TraceRecord> mix(const std::vector<trace::TraceRecord>& a,
                                    const std::vector<trace::TraceRecord>& b) {
  std::vector<trace::TraceRecord> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end(),
            [](const trace::TraceRecord& x, const trace::TraceRecord& y) {
              return x.timestamp < y.timestamp;
            });
  return out;
}

}  // namespace

int main() {
  bench::print_header("DoS application study",
                      "server under random-subdomain and flood attacks");

  const TimeNs kDuration = 60 * kSecond;
  auto legit = bench::broot16_trace(2000, kDuration, 20000, 99);
  auto server = bench::root_wildcard_server();
  // The attack victim: a real zone without wildcards, so random-subdomain
  // queries produce authoritative NXDOMAIN work instead of wildcard hits.
  {
    auto victim = zone::parse_zone(R"(
$ORIGIN victim.example.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
)");
    if (!victim.ok() || !server.default_zones().add(std::move(*victim)).ok())
      return 1;
  }

  simnet::SimReplayConfig cfg;
  cfg.rtt = kMilli;
  cfg.sample_interval = 10 * kSecond;

  auto baseline = simnet::simulate_replay(legit, server, cfg);
  std::printf("  baseline (no attack): %llu q, cpu %.2f%%, nxdomain share %.0f%%\n",
              static_cast<unsigned long long>(baseline.queries),
              baseline.steady_cpu_percent(2).median,
              100.0 * static_cast<double>(server.stats().nxdomain.load()) /
                  static_cast<double>(server.stats().queries.load()));

  std::printf("\n  %-18s %10s %12s %10s %12s %10s\n", "attack", "rate(q/s)",
              "total q", "cpu med%", "resp MB", "nxdomain");
  for (auto kind : {synth::AttackTraceSpec::Kind::RandomSubdomain,
                    synth::AttackTraceSpec::Kind::DirectFlood}) {
    for (double rate : {2000.0, 10000.0, 50000.0}) {
      synth::AttackTraceSpec attack;
      attack.kind = kind;
      attack.rate_qps = rate;
      attack.duration_ns = kDuration;
      attack.victim_domain = kind == synth::AttackTraceSpec::Kind::RandomSubdomain
                                 ? "victim.example"
                                 : "www.victim.example";
      attack.seed = 7;
      auto combined = mix(legit, synth::make_attack_trace(attack));
      uint64_t nx_before = server.stats().nxdomain.load();
      uint64_t q_before = server.stats().queries.load();
      auto result = simnet::simulate_replay(combined, server, cfg);
      uint64_t bytes = 0;
      for (const auto& s : result.samples) bytes += s.response_bytes;
      double nx_share =
          100.0 *
          static_cast<double>(server.stats().nxdomain.load() - nx_before) /
          static_cast<double>(server.stats().queries.load() - q_before);
      std::printf("  %-18s %10.0f %12llu %9.2f%% %12.1f %9.0f%%\n",
                  kind == synth::AttackTraceSpec::Kind::RandomSubdomain
                      ? "random-subdomain"
                      : "direct-flood",
                  rate, static_cast<unsigned long long>(result.queries),
                  result.steady_cpu_percent(2).median,
                  static_cast<double>(bytes) / 1e6, nx_share);
    }
  }

  std::printf(
      "\n  reading: CPU scales linearly with attack rate; the random-subdomain\n"
      "  attack drives the victim's NXDOMAIN share toward 100%% (cache-busting),\n"
      "  while the flood concentrates on one (cacheable) answer.\n");
  return 0;
}
