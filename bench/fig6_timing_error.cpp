// Figure 6: query timing difference between replayed and original traces.
//
// Replays each trace over UDP on loopback in real time through the full
// Controller → Distributor → Querier pipeline and reports, per trace, the
// distribution of (actual send offset − trace offset): quartiles, min, max.
// The paper's quartiles sit within ±2.5 ms (±8 ms for the 0.1 s
// inter-arrival case); on shared single-core hardware expect the same
// shape with somewhat wider spread.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"

using namespace ldp;

namespace {

Summary replay_timing_error(const std::vector<trace::TraceRecord>& trace,
                            const Endpoint& server) {
  replay::EngineConfig cfg;
  cfg.server = server;
  cfg.drain_grace = kSecond / 2;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", report.error().message.c_str());
    return {};
  }
  bench::print_loss_counters(*report);
  TimeNs t0 = trace.front().timestamp;
  Sampler error_ms;
  // Ignore the first second of replay to skip startup transients (the
  // paper ignores the first 20 s of its hour-long replays).
  for (const auto& sr : report->sends) {
    if (sr.trace_time - t0 < kSecond) continue;
    TimeNs ideal = sr.trace_time - t0;
    TimeNs actual = sr.send_time - report->replay_start;
    error_ms.add(ns_to_ms(actual - ideal));
  }
  return error_ms.summary();
}

}  // namespace

int main() {
  auto bg = server::BackgroundServer::start(bench::root_wildcard_server());
  if (!bg.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", bg.error().message.c_str());
    return 1;
  }

  bench::print_header("Figure 6", "query time error (ms) in replay");
  std::printf("  %-22s %8s %8s %8s %8s %8s\n", "trace", "min", "q1", "median", "q3",
              "max");

  const TimeNs kDuration = 12 * kSecond;

  // Synthetic traces, inter-arrival 0.1 ms .. 1 s (syn-4 .. syn-0).
  struct SynCase {
    const char* label;
    TimeNs gap;
  };
  const SynCase cases[] = {
      {"synthetic 0.1ms", kMilli / 10}, {"synthetic 1ms", kMilli},
      {"synthetic 10ms", 10 * kMilli},  {"synthetic 100ms", 100 * kMilli},
      {"synthetic 1s", kSecond},
  };
  for (const auto& c : cases) {
    synth::FixedTraceSpec spec;
    spec.interarrival_ns = c.gap;
    spec.duration_ns = std::max<TimeNs>(kDuration, 4 * c.gap);
    spec.client_count = 100;
    spec.seed = 6;
    auto trace = synth::make_fixed_trace(spec);
    auto sum = replay_timing_error(trace, (*bg)->endpoint());
    std::printf("  %-22s %8.2f %8.2f %8.2f %8.2f %8.2f\n", c.label, sum.min, sum.q1,
                sum.median, sum.q3, sum.max);
  }

  // B-Root-like trace (scaled rate).
  auto broot = bench::broot16_trace(2000, kDuration, 5000, 66);
  auto sum = replay_timing_error(broot, (*bg)->endpoint());
  std::printf("  %-22s %8.2f %8.2f %8.2f %8.2f %8.2f\n", "B-Root (scaled)", sum.min,
              sum.q1, sum.median, sum.q3, sum.max);

  std::printf(
      "\n  Paper reference: quartiles within +/-2.5 ms for most traces, +/-8 ms at\n"
      "  the 0.1 s inter-arrival, min/max within +/-17 ms.\n");
  return 0;
}
