// Ablation: meta-DNS-server (one server, split-horizon views, proxy
// rewriting) vs independent per-zone servers.
//
// DESIGN.md decision 1: hosting the whole hierarchy on one server instance
// must not cost materially more per query than independent servers, and
// the proxy rewrite must be cheap — otherwise the consolidation that makes
// many-zone experiments deployable would distort timing.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "proxy/proxy.hpp"
#include "trace/pcap.hpp"

using namespace ldp;

namespace {

const IpAddr kRootAddr{Ip4{198, 41, 0, 4}};
const IpAddr kMetaAddr{Ip4{10, 1, 1, 3}};
const IpAddr kRecursiveAddr{Ip4{10, 1, 1, 2}};

// One meta server whose views each hold a synthetic TLD zone.
server::AuthServer make_meta(size_t zones) {
  server::AuthServer meta;
  for (size_t i = 0; i < zones; ++i) {
    std::string tld = "tld" + std::to_string(i);
    auto z = zone::parse_zone("$ORIGIN " + tld +
                              ".\n$TTL 3600\n@ IN SOA ns1 admin 1 2 3 4 300\n@ IN NS "
                              "ns1\nns1 IN A 192.0.2.1\n* IN A 192.0.2.80\n");
    zone::View& v = meta.views().add_view(tld);
    v.match_clients.insert(IpAddr{Ip4{10, 2, static_cast<uint8_t>(i >> 8),
                                      static_cast<uint8_t>(i & 0xff)}});
    if (!z.ok() || !v.zones.add(std::move(*z)).ok()) std::abort();
  }
  return meta;
}

std::vector<server::AuthServer> make_independent(size_t zones) {
  std::vector<server::AuthServer> servers;
  servers.reserve(zones);
  for (size_t i = 0; i < zones; ++i) {
    std::string tld = "tld" + std::to_string(i);
    auto z = zone::parse_zone("$ORIGIN " + tld +
                              ".\n$TTL 3600\n@ IN SOA ns1 admin 1 2 3 4 300\n@ IN NS "
                              "ns1\nns1 IN A 192.0.2.1\n* IN A 192.0.2.80\n");
    server::AuthServer s;
    if (!z.ok() || !s.default_zones().add(std::move(*z)).ok()) std::abort();
    servers.push_back(std::move(s));
  }
  return servers;
}

dns::Message query_for(size_t zone_idx, uint16_t id) {
  auto name = dns::Name::parse("www.tld" + std::to_string(zone_idx));
  return dns::Message::make_query(id, *name, dns::RRType::A, false);
}

void BM_MetaServerAnswer(benchmark::State& state) {
  size_t zones = static_cast<size_t>(state.range(0));
  auto meta = make_meta(zones);
  uint16_t id = 0;
  size_t zone_idx = 0;
  for (auto _ : state) {
    dns::Message q = query_for(zone_idx, id++);
    IpAddr view_key{Ip4{10, 2, static_cast<uint8_t>(zone_idx >> 8),
                        static_cast<uint8_t>(zone_idx & 0xff)}};
    benchmark::DoNotOptimize(meta.answer(q, view_key));
    zone_idx = (zone_idx + 1) % zones;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetaServerAnswer)->Arg(8)->Arg(64)->Arg(549);  // 549: Rec-17 zones

void BM_IndependentServersAnswer(benchmark::State& state) {
  size_t zones = static_cast<size_t>(state.range(0));
  auto servers = make_independent(zones);
  uint16_t id = 0;
  size_t zone_idx = 0;
  for (auto _ : state) {
    dns::Message q = query_for(zone_idx, id++);
    benchmark::DoNotOptimize(servers[zone_idx].answer(q, kRecursiveAddr));
    zone_idx = (zone_idx + 1) % zones;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndependentServersAnswer)->Arg(8)->Arg(64)->Arg(549);

void BM_ProxyRewritePair(benchmark::State& state) {
  proxy::ServerProxy rec(proxy::ServerProxy::Role::Recursive, kMetaAddr);
  proxy::ServerProxy aut(proxy::ServerProxy::Role::Authoritative, kRecursiveAddr);
  for (auto _ : state) {
    proxy::Datagram q;
    q.src = Endpoint{kRecursiveAddr, 42001};
    q.dst = Endpoint{kRootAddr, 53};
    rec.rewrite(q);
    proxy::Datagram r;
    r.src = Endpoint{kMetaAddr, 53};
    r.dst = q.src;
    aut.rewrite(r);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProxyRewritePair);

void BM_RawPacketRewriteWithChecksums(benchmark::State& state) {
  // The TUN-path cost: rewrite addresses in a real IPv4/UDP packet and fix
  // both checksums.
  trace::PcapWriter w;
  dns::Message msg = dns::Message::make_query(1, *dns::Name::parse("x.tld0"),
                                              dns::RRType::A);
  auto rec = trace::make_query_record(0, Endpoint{kRecursiveAddr, 42001},
                                      Endpoint{kRootAddr, 53}, msg);
  w.add(rec);
  auto pcap = std::move(w).take();
  std::vector<uint8_t> packet(pcap.begin() + 40, pcap.end());
  for (auto _ : state) {
    auto r = proxy::rewrite_raw_ipv4_udp(packet, Ip4{198, 41, 0, 4}, Ip4{10, 1, 1, 3});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawPacketRewriteWithChecksums);

}  // namespace

BENCHMARK_MAIN();
