// Ablation: one-level vs two-level query distribution (DESIGN.md
// decision 2). §2.6 motivates the Controller → Distributor → Querier tree
// by per-node connection limits; the cost is an extra queue hop per query.
// This ablation replays the same trace in fast mode through 1-level
// (1 distributor) and 2-level (several distributors) configurations and
// reports achieved dispatch throughput.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"

using namespace ldp;

namespace {

const std::vector<trace::TraceRecord>& cached_trace() {
  static const auto trace = [] {
    synth::FixedTraceSpec spec;
    spec.interarrival_ns = 100 * kMicro;
    spec.duration_ns = 2 * kSecond;  // 20k queries
    spec.client_count = 64;
    spec.seed = 3;
    return synth::make_fixed_trace(spec);
  }();
  return trace;
}

server::BackgroundServer& shared_server() {
  static auto bg = [] {
    auto s = server::BackgroundServer::start(bench::root_wildcard_server());
    if (!s.ok()) std::abort();
    return std::move(*s);
  }();
  return *bg;
}

void run_config(benchmark::State& state, size_t distributors, size_t queriers) {
  for (auto _ : state) {
    replay::EngineConfig cfg;
    cfg.server = shared_server().endpoint();
    cfg.timed = false;
    cfg.distributors = distributors;
    cfg.queriers_per_distributor = queriers;
    cfg.drain_grace = 100 * kMilli;
    replay::QueryEngine engine(cfg);
    auto report = engine.replay(cached_trace());
    if (!report.ok()) state.SkipWithError(report.error().message.c_str());
    benchmark::DoNotOptimize(report);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(cached_trace().size()));
  }
}

void BM_OneLevelDistribution(benchmark::State& state) {
  run_config(state, 1, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_OneLevelDistribution)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_TwoLevelDistribution(benchmark::State& state) {
  run_config(state, 2, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_TwoLevelDistribution)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
