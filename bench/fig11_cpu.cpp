// Figure 11: server CPU usage vs TCP timeout under minimal RTT (<1 ms),
// B-Root-17a trace, for three workloads: the original trace (3% TCP),
// all-TCP, and all-TLS.
//
// The paper's observations to reproduce: (1) CPU is flat across timeout
// settings; (2) all-TCP (~5% median) sits BELOW the original 97%-UDP mix
// (~10%) — the NIC-offload surprise; (3) all-TLS lands at 9-10% with a
// small bump at the 5 s timeout from extra handshakes.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "simnet/replay_sim.hpp"

using namespace ldp;

int main() {
  bench::print_header("Figure 11", "CPU usage vs TCP timeout, minimal RTT (<1ms)");

  // B-Root-17a-like (2017 rate, 72.3% DO is close enough for CPU).
  auto original = bench::broot16_trace(4000, 180 * kSecond, 25000, 11);
  auto all_tcp = bench::force_transport(original, Transport::Tcp);
  auto all_tls = bench::force_transport(original, Transport::Tls);

  auto server = bench::root_wildcard_server();

  std::printf("  %-10s %26s %26s %26s\n", "timeout", "original (3% TCP)", "all TCP",
              "all TLS");
  std::printf("  %-10s %10s %7s %7s %10s %7s %7s %10s %7s %7s\n", "", "median", "q1",
              "q3", "median", "q1", "q3", "median", "q1", "q3");

  for (TimeNs timeout = 5 * kSecond; timeout <= 40 * kSecond; timeout += 5 * kSecond) {
    simnet::SimReplayConfig cfg;
    cfg.rtt = kMilli / 2;  // <1 ms
    cfg.idle_timeout = timeout;
    cfg.sample_interval = 10 * kSecond;

    Summary rows[3];
    const std::vector<trace::TraceRecord>* traces[3] = {&original, &all_tcp, &all_tls};
    for (int i = 0; i < 3; ++i) {
      auto result = simnet::simulate_replay(*traces[i], server, cfg);
      rows[i] = result.steady_cpu_percent(3);
    }
    std::printf("  %7llds  %9.2f%% %6.2f%% %6.2f%% %9.2f%% %6.2f%% %6.2f%% %9.2f%%"
                " %6.2f%% %6.2f%%\n",
                static_cast<long long>(timeout / kSecond), rows[0].median, rows[0].q1,
                rows[0].q3, rows[1].median, rows[1].q1, rows[1].q3, rows[2].median,
                rows[2].q1, rows[2].q3);
  }

  std::printf(
      "\n  Paper reference: flat across timeouts; all-TCP ~5%% median, all-TLS\n"
      "  9-10%% (2%% higher at the 5 s timeout), original 3%%-TCP trace ~10%% —\n"
      "  UDP-heavy service costs MORE cpu than all-TCP on offload-capable NICs.\n");
  return 0;
}
