// Table 1: DNS traces used in experiments and evaluation.
//
// Regenerates the trace inventory with the synthetic stand-ins for the
// restricted-access captures. Columns mirror the paper's: duration,
// inter-arrival mean ± stdev (seconds), distinct client IPs, records.
// Volumes are scaled (documented per row); inter-arrival *shape* matches.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "trace/stats.hpp"

using namespace ldp;

int main() {
  bench::print_header("Table 1", "DNS traces used in experiments and evaluation");
  std::printf("  %-12s %9s  %-24s %9s  %12s\n", "trace", "duration",
              "inter-arrival (s)", "clients", "queries");

  std::vector<std::pair<std::string, std::vector<trace::TraceRecord>>> rows;

  // B-Root-16: one hour at 38k q/s in the paper; here 60 s at 4k q/s.
  rows.emplace_back("B-Root-16", bench::broot16_trace(4000, 60 * kSecond, 30000, 16));

  // B-Root-17a / 17b: 2017 rate slightly higher (mean inter-arrival 23 µs
  // vs 27 µs in Table 1); 17b is the 20-minute subset, here 20 s.
  {
    synth::RootTraceSpec spec;
    spec.mean_rate_qps = 4700;
    spec.duration_ns = 60 * kSecond;
    spec.client_count = 33000;
    spec.seed = 17;
    rows.emplace_back("B-Root-17a", synth::make_root_trace(spec));
    spec.duration_ns = 20 * kSecond;
    spec.client_count = 20000;
    spec.seed = 18;
    rows.emplace_back("B-Root-17b", synth::make_root_trace(spec));
  }

  // Rec-17: full scale — the original is small (91 clients, 20k queries).
  {
    synth::RecursiveTraceSpec spec;
    spec.seed = 19;
    rows.emplace_back("Rec-17", synth::make_recursive_trace(spec));
  }

  // syn-0..4: fixed inter-arrivals 1 s down to 0.1 ms over 60 s.
  const TimeNs gaps[] = {kSecond, kSecond / 10, kSecond / 100, kMilli, kMilli / 10};
  const size_t clients[] = {3000, 9700, 10000, 10000, 10000};
  for (int i = 0; i < 5; ++i) {
    synth::FixedTraceSpec spec;
    spec.interarrival_ns = gaps[i];
    spec.duration_ns = 60 * kSecond;
    spec.client_count = clients[i];
    spec.seed = static_cast<uint64_t>(20 + i);
    rows.emplace_back("syn-" + std::to_string(i), synth::make_fixed_trace(spec));
  }

  for (const auto& [name, records] : rows) {
    auto stats = trace::compute_stats(records);
    std::printf("  %-12s %8.0fs  %.6f +/- %.6f   %9zu  %12zu\n", name.c_str(),
                stats.duration_s(), stats.interarrival_mean_s,
                stats.interarrival_stdev_s, stats.unique_clients, stats.queries);
  }

  std::printf(
      "\n  Paper reference (Table 1): B-Root-16 .000027+/-.000619s 1.07M clients"
      " 137M records;\n  B-Root-17a .000023+/-.001647s; Rec-17 .180799+/-.355360s"
      " 91 clients 20k records.\n"
      "  Synthetic stand-ins are volume-scaled; Rec-17 and syn-* are full scale.\n");
  return 0;
}
