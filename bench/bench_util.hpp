// Shared helpers for the figure/table regeneration binaries.
//
// Scale note: the paper's experiments replay full DITL root traces (38k+
// q/s for an hour, 1M+ clients) on a DETER testbed. These benches replay
// statistically matched workloads scaled to one machine (documented in
// EXPERIMENTS.md); the comparisons the paper draws — who wins, how curves
// bend, where discontinuities sit — are preserved, absolute magnitudes of
// rate/volume are smaller.
#pragma once

#include <cstdio>
#include <string>

#include "mutate/mutator.hpp"
#include "replay/engine.hpp"
#include "server/auth_server.hpp"
#include "synth/generator.hpp"
#include "util/stats.hpp"
#include "zone/parser.hpp"

namespace ldp::bench {

/// One-line loss accounting for a replay (Figs 6-9 riders): how many of the
/// scheduled queries actually completed, and what happened to the rest.
/// A nonzero `lost` column means the fidelity numbers above it describe
/// only the surviving queries — see EXPERIMENTS.md "interpreting loss".
inline void print_loss_counters(const replay::EngineReport& r) {
  const auto& lc = r.lifecycle;
  std::printf(
      "  loss accounting: sent %llu  answered %llu  lost %llu  timeouts %llu"
      "  retries %llu  dup-ids %llu  max-in-flight %llu\n",
      static_cast<unsigned long long>(r.queries_sent),
      static_cast<unsigned long long>(r.responses_received),
      static_cast<unsigned long long>(lc.expired),
      static_cast<unsigned long long>(lc.timeouts),
      static_cast<unsigned long long>(lc.retries),
      static_cast<unsigned long long>(lc.duplicate_ids),
      static_cast<unsigned long long>(r.max_in_flight));
  if (!r.latency_hist.empty())
    std::printf("  latency: %s\n", r.latency_hist.summary_ms().c_str());
}

/// Print a boxplot-style row: median [q1, q3] (p5, p95).
inline void print_summary_row(const std::string& label, const Summary& s,
                              const char* unit) {
  std::printf("  %-34s median %9.3f  q1 %9.3f  q3 %9.3f  p5 %9.3f  p95 %9.3f  %s\n",
              label.c_str(), s.median, s.q1, s.q3, s.p5, s.p95, unit);
}

inline void print_header(const char* id, const char* title) {
  std::printf("\n=== %s: %s ===\n", id, title);
}

/// B-Root-16-like trace (mid-2016 operating point: 72.3%% DO).
inline std::vector<trace::TraceRecord> broot16_trace(double rate_qps, TimeNs duration,
                                                     size_t clients, uint64_t seed) {
  synth::RootTraceSpec spec;
  spec.mean_rate_qps = rate_qps;
  spec.duration_ns = duration;
  spec.client_count = clients;
  spec.do_fraction = 0.723;
  spec.tcp_fraction = 0.03;
  spec.seed = seed;
  return synth::make_root_trace(spec);
}

/// A root-like zone with wildcards under each TLD so every replayed query
/// gets a response (the evaluation hosts names with wildcards, §4.1).
inline server::AuthServer root_wildcard_server(server::ServerConfig config = {}) {
  server::AuthServer s(config);
  // Realistic referral weight: root zone delegations carry several NS
  // records plus glue (real TLDs have 4-13 nameservers), which sets the
  // unsigned-response size the DNSSEC experiment's ratios depend on.
  std::string zone_text = R"(
$ORIGIN .
$TTL 86400
. IN SOA a.root-servers.net. nstld.verisign-grs.com. 2016040600 1800 900 604800 86400
)";
  static const char* kRootLetters[] = {"a", "b", "c", "d", "e", "f", "g",
                                       "h", "i", "j", "k", "l", "m"};
  for (int i = 0; i < 13; ++i) {
    zone_text += std::string(". IN NS ") + kRootLetters[i] + ".root-servers.net.\n";
    zone_text += std::string(kRootLetters[i]) + ".root-servers.net. IN A 198.41.0." +
                 std::to_string(4 + i) + "\n";
  }
  static const char* kTlds[] = {"com", "net", "org", "arpa", "edu", "gov",
                                "io",  "de",  "uk",  "jp",   "cn",  "fr"};
  int subnet = 10;
  for (const char* tld : kTlds) {
    for (int ns = 0; ns < 4; ++ns) {
      std::string host =
          std::string(kRootLetters[ns]) + ".nic-servers." + tld + ".";
      zone_text += std::string(tld) + ". IN NS " + host + "\n";
      zone_text += host + " IN A 192." + std::to_string(subnet) + ".6." +
                   std::to_string(30 + ns) + "\n";
    }
    ++subnet;
  }
  auto z = zone::parse_zone(zone_text);
  if (!z.ok()) std::abort();
  // example.com with wildcards for the synthetic fixed-interval traces.
  auto example = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  if (!example.ok()) std::abort();
  if (!s.default_zones().add(std::move(*z)).ok()) std::abort();
  if (!s.default_zones().add(std::move(*example)).ok()) std::abort();
  return s;
}

/// Mutate a trace so every query uses `transport` (§5.2's what-if).
inline std::vector<trace::TraceRecord> force_transport(
    std::vector<trace::TraceRecord> trace, Transport transport) {
  mutate::MutatorPipeline pipe;
  pipe.force_transport(transport);
  return pipe.apply_all(std::move(trace));
}

}  // namespace ldp::bench
